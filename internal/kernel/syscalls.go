// syscalls.go implements the system call table: ~90 handlers over the
// in-memory VFS and process state. Handlers return the value placed in R0
// (failures return -errno as an unsigned value) and whether the process
// terminated.
package kernel

import (
	"encoding/binary"
	"errors"

	"asc/internal/binfmt"
	"asc/internal/sys"
	"asc/internal/vfs"
	"asc/internal/vm"
)

// Open flags (platform ABI).
const (
	ORdOnly = 0x0
	OWrOnly = 0x1
	ORdWr   = 0x2
	OCreat  = 0x40
	OTrunc  = 0x200
	OAppend = 0x400
	// ONonblock is a status flag (fcntl F_SETFL), not an open mode:
	// only sockets honour it, turning would-park operations into EAGAIN.
	ONonblock = 0x800
)

// fcntl commands.
const (
	FGetFL = 3
	FSetFL = 4
)

// Seek whence values.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// errno converts an error to a -errno return value.
func errno(e int) uint32 { return uint32(-e) }

// vfsErrno maps vfs errors to errno returns.
func vfsErrno(err error) uint32 {
	switch {
	case errors.Is(err, vfs.ErrNotExist):
		return errno(sys.ENOENT)
	case errors.Is(err, vfs.ErrExist):
		return errno(sys.EEXIST)
	case errors.Is(err, vfs.ErrNotDir):
		return errno(sys.ENOTDIR)
	case errors.Is(err, vfs.ErrIsDir):
		return errno(sys.EISDIR)
	case errors.Is(err, vfs.ErrNotEmpty):
		return errno(sys.ENOTEMPTY)
	case errors.Is(err, vfs.ErrLoop):
		return errno(sys.ELOOP)
	case errors.Is(err, vfs.ErrNameLong):
		return errno(sys.ENAMETOOLONG)
	case errors.Is(err, vfs.ErrPermitted):
		return errno(sys.EPERM)
	case errors.Is(err, vfs.ErrNoSpace):
		return errno(sys.ENOSPC)
	default:
		return errno(sys.EINVAL)
	}
}

// dispatch executes one system call.
func (k *Kernel) dispatch(p *Process, num uint16, site uint32, args [sys.MaxArgs]uint32) (uint32, bool) {
	if cost, ok := handlerCost[num]; ok {
		p.CPU.Cycles += cost
	} else {
		p.CPU.Cycles += defaultHandlerCost
	}
	switch num {
	case sys.SysExit:
		p.Exited = true
		p.Code = args[0]
		return 0, true
	case sys.SysRead:
		return k.sysRead(p, args[0], args[1], args[2]), false
	case sys.SysWrite:
		return k.sysWrite(p, args[0], args[1], args[2]), false
	case sys.SysOpen:
		return k.sysOpen(p, args[0], args[1], args[2]), false
	case sys.SysClose:
		return k.sysClose(p, args[0]), false
	case sys.SysStat:
		return k.sysStat(p, args[0], args[1], true), false
	case sys.SysFstat:
		return k.sysFstat(p, args[0], args[1]), false
	case sys.SysLseek:
		return k.sysLseek(p, args[0], args[1], args[2]), false
	case sys.SysBrk:
		return k.sysBrk(p, args[0]), false
	case sys.SysMmap:
		if p.pager != nil {
			return k.sysMmapPaged(p, args[0], args[1], args[2], args[3], args[4]), false
		}
		return k.sysMmap(p, args[1]), false
	case sys.SysMunmap:
		if p.pager != nil {
			return k.sysMunmapPaged(p, args[0], args[1]), false
		}
		return 0, false
	case sys.SysMprotect:
		if p.pager != nil {
			return k.sysMprotectPaged(p, args[0], args[1], args[2]), false
		}
		return 0, false
	case sys.SysMadvise, sys.SysMsync:
		return 0, false
	case sys.SysGetpid:
		return uint32(p.PID), false
	case sys.SysGettimeofday:
		return k.sysGettimeofday(p, args[0]), false
	case sys.SysMkdir:
		return k.pathCall1(p, args[0], func(path string) error { return k.FS.Mkdir(path, 0o777&^p.umask) }), false
	case sys.SysRmdir:
		return k.pathCall1(p, args[0], k.FS.Rmdir), false
	case sys.SysUnlink:
		return k.pathCall1(p, args[0], k.FS.Unlink), false
	case sys.SysReadlink:
		return k.sysReadlink(p, args[0], args[1], args[2]), false
	case sys.SysSymlink:
		return k.sysSymlink(p, args[0], args[1]), false
	case sys.SysChdir:
		return k.sysChdir(p, args[0]), false
	case sys.SysGetcwd:
		return k.sysGetcwd(p, args[0], args[1]), false
	case sys.SysDup:
		return k.sysDup(p, args[0]), false
	case sys.SysDup2:
		return k.sysDup2(p, args[0], args[1]), false
	case sys.SysPipe:
		return k.sysPipe(p, args[0]), false
	case sys.SysExecve:
		return k.sysExecve(p, args[0])
	case sys.SysKill:
		return k.sysKill(p, args[0], args[1])
	case sys.SysSocket:
		return k.sysSocket(p, args[0], args[1], args[2]), false
	case sys.SysSendto:
		return k.sysSendto(p, args[0], args[1], args[2], args[4]), false
	case sys.SysRecvfrom:
		return k.sysRecvfrom(p, args[0], args[1], args[2], args[4]), false
	case sys.SysBind:
		return k.sysBind(p, args[0], args[1]), false
	case sys.SysConnect:
		return k.sysConnect(p, args[0], args[1]), false
	case sys.SysListen:
		return k.sysListen(p, args[0], args[1]), false
	case sys.SysShutdown:
		return k.sysShutdown(p, args[0]), false
	case sys.SysSetsockopt, sys.SysGetsockopt:
		return k.sockCheck(p, args[0]), false
	case sys.SysAccept:
		return k.sysAccept(p, args[0], args[1]), false
	case sys.SysGetsockname, sys.SysGetpeername:
		return k.sysSockname(p, args[0], args[1], num == sys.SysGetpeername), false
	case sys.SysSocketpair:
		return k.sysSocketpair(p, args[3]), false
	case sys.SysSigaction:
		return k.sysSigaction(p, args[0], args[1], args[2]), false
	case sys.SysNanosleep:
		p.CPU.Cycles += 1000 // modeled sleep latency
		return 0, false
	case sys.SysFcntl:
		return k.sysFcntl(p, args[0], args[1], args[2]), false
	case sys.SysGetdirentries:
		return k.sysGetdirentries(p, args[0], args[1], args[2]), false
	case sys.SysFstatfs, sys.SysStatfs:
		return k.sysStatfs(p, args[1]), false
	case sys.SysUname:
		return k.sysUname(p, args[0]), false
	case sys.SysSysconf:
		return 4096, false
	case sys.SysWritev:
		return k.sysWritev(p, args[0], args[1], args[2]), false
	case sys.SysReadv:
		return k.sysReadv(p, args[0], args[1], args[2]), false
	case sys.SysUmask:
		old := p.umask
		p.umask = args[0] & 0o777
		return old, false
	case sys.SysChmod:
		return k.pathCall1(p, args[0], func(path string) error { return k.FS.Chmod(path, args[1]) }), false
	case sys.SysGetuid, sys.SysGeteuid:
		return 1000, false
	case sys.SysGetgid, sys.SysGetegid:
		return 100, false
	case sys.SysGetppid:
		return 1, false
	case sys.SysGetpgrp, sys.SysSetsid:
		return uint32(p.PID), false
	case sys.SysTime:
		return k.sysTime(p, args[0]), false
	case sys.SysRename:
		return k.pathCall2(p, args[0], args[1], k.FS.Rename), false
	case sys.SysLink:
		return k.pathCall2(p, args[0], args[1], k.FS.Link), false
	case sys.SysAccess:
		return k.sysAccess(p, args[0]), false
	case sys.SysFtruncate:
		return k.sysFtruncate(p, args[0], args[1]), false
	case sys.SysTruncate:
		return k.pathCall1(p, args[0], func(path string) error { return k.FS.Truncate(path, args[1]) }), false
	case sys.SysSync, sys.SysFsync, sys.SysFlock:
		return 0, false
	case sys.SysIoctl:
		if p.fd(args[0]) == nil {
			return errno(sys.EBADF), false
		}
		return 0, false
	case sys.SysSigprocmask:
		if args[2] != 0 {
			k.writeZeros(p, args[2], 4)
		}
		return 0, false
	case sys.SysAlarm, sys.SysPause:
		return 0, false
	case sys.SysUtime:
		return k.pathCall1(p, args[0], func(path string) error {
			_, err := k.FS.Lookup(path)
			return err
		}), false
	case sys.SysGetrlimit, sys.SysGetrusage, sys.SysTimes:
		k.writeZeros(p, args[1], 16)
		return 0, false
	case sys.SysSetrlimit:
		return 0, false
	case sys.SysGethostname:
		return k.sysGethostname(p, args[0], args[1]), false
	case sys.SysPoll:
		return k.sysPoll(p, args[0], args[1], args[2]), false
	case sys.SysSelect:
		return k.sysSelect(p, args[0], args[1], args[2], args[3], args[4]), false
	case sys.SysPread:
		return k.sysPRead(p, args[0], args[1], args[2], args[3]), false
	case sys.SysPwrite:
		return k.sysPWrite(p, args[0], args[1], args[2], args[3]), false
	case sys.SysFchmod, sys.SysFchown, sys.SysChown:
		return 0, false
	case sys.SysWait4:
		return 0, false
	case sys.SysGetgroups:
		return 0, false
	case sys.SysIndirect:
		if k.Personality != OpenBSD {
			return errno(sys.ENOSYS), false
		}
		var shifted [sys.MaxArgs]uint32
		copy(shifted[:], args[1:])
		target := uint16(args[0])
		if target == sys.SysIndirect {
			return errno(sys.EINVAL), false
		}
		return k.dispatch(p, target, site, shifted)
	default:
		return errno(sys.ENOSYS), false
	}
}

func (k *Kernel) writeZeros(p *Process, addr, n uint32) {
	if addr == 0 {
		return
	}
	_ = p.Mem.UserWrite(addr, make([]byte, n))
}

func (k *Kernel) pathCall1(p *Process, pathAddr uint32, f func(string) error) uint32 {
	path, ok := p.readPath(pathAddr)
	if !ok {
		return errno(sys.EFAULT)
	}
	if err := f(path); err != nil {
		return vfsErrno(err)
	}
	return 0
}

func (k *Kernel) pathCall2(p *Process, a1, a2 uint32, f func(string, string) error) uint32 {
	p1, ok := p.readPath(a1)
	if !ok {
		return errno(sys.EFAULT)
	}
	p2, ok := p.readPath(a2)
	if !ok {
		return errno(sys.EFAULT)
	}
	if err := f(p1, p2); err != nil {
		return vfsErrno(err)
	}
	return 0
}

func (k *Kernel) sysOpen(p *Process, pathAddr, flags, mode uint32) uint32 {
	path, ok := p.readPath(pathAddr)
	if !ok {
		return errno(sys.EFAULT)
	}
	var node *vfs.Node
	var err error
	if flags&OCreat != 0 {
		node, err = k.FS.Create(path, mode&^p.umask, flags&OTrunc != 0)
	} else {
		node, err = k.FS.Lookup(path)
		if err == nil && node.Kind == vfs.KindFile && flags&OTrunc != 0 {
			err = k.FS.TruncateNode(node, 0)
		}
	}
	if err != nil {
		return vfsErrno(err)
	}
	e := &fdEntry{kind: fdFile, node: node, path: path}
	if flags&OAppend != 0 {
		e.offset = k.FS.NodeSize(node)
	}
	fd, ok := p.allocFD(e)
	if !ok {
		return errno(sys.ENFILE)
	}
	return uint32(fd)
}

func (k *Kernel) sysClose(p *Process, fd uint32) uint32 {
	e := p.fd(fd)
	if e == nil {
		return errno(sys.EBADF)
	}
	if e.pipe != nil && e.kind == fdPipeW {
		e.pipe.closed = true
	}
	if e.kind == fdSocket && e.sock != nil {
		if e.sock.conn != nil {
			e.sock.conn.Close()
		}
		if e.sock.lis != nil {
			e.sock.lis.Close()
		}
	}
	p.fds[fd] = nil
	return 0
}

func (k *Kernel) sysRead(p *Process, fd, buf, n uint32) uint32 {
	e := p.fd(fd)
	if e == nil {
		return errno(sys.EBADF)
	}
	if n > 1<<20 {
		n = 1 << 20
	}
	tmp := make([]byte, n)
	var got int
	switch e.kind {
	case fdConsole:
		remain := len(p.Stdin) - p.stdinPos
		if remain <= 0 {
			got = 0
		} else {
			got = copy(tmp, p.Stdin[p.stdinPos:])
			p.stdinPos += got
		}
	case fdFile:
		var err error
		got, err = k.FS.ReadAt(e.node, e.offset, tmp)
		if err != nil {
			return vfsErrno(err)
		}
		e.offset += uint32(got)
	case fdPipeR:
		got = copy(tmp, e.pipe.data)
		e.pipe.data = e.pipe.data[got:]
	case fdSocket:
		// read on a connected socket is recvfrom without a source slot.
		if k.Net != nil {
			return k.sysRecvfrom(p, fd, buf, n, 0)
		}
		return errno(sys.EINVAL)
	default:
		return errno(sys.EINVAL)
	}
	if got > 0 {
		if err := p.Mem.UserWrite(buf, tmp[:got]); err != nil {
			return errno(sys.EFAULT)
		}
	}
	p.CPU.Cycles += uint64(got) * k.Costs.ReadPerByte / 1000
	return uint32(got)
}

func (k *Kernel) sysWrite(p *Process, fd, buf, n uint32) uint32 {
	e := p.fd(fd)
	if e == nil {
		return errno(sys.EBADF)
	}
	if n > 1<<20 {
		return errno(sys.EINVAL)
	}
	b, err := p.Mem.KernelRead(buf, n)
	if err != nil {
		return errno(sys.EFAULT)
	}
	switch e.kind {
	case fdConsole:
		p.Stdout = append(p.Stdout, b...)
	case fdFile:
		if _, err := k.FS.WriteAt(e.node, e.offset, b); err != nil {
			return vfsErrno(err)
		}
		e.offset += n
	case fdPipeW:
		e.pipe.data = append(e.pipe.data, b...)
	case fdSocket:
		// write on a connected socket is sendto without a destination.
		if k.Net != nil {
			return k.sysSendto(p, fd, buf, n, 0)
		}
		e.sock.sent = append(e.sock.sent, append([]byte(nil), b...))
	default:
		return errno(sys.EINVAL)
	}
	p.CPU.Cycles += uint64(n) * k.Costs.WritePerByte / 1000
	return n
}

// statBuf renders the 24-byte stat structure from a locked metadata
// snapshot.
func statBuf(info vfs.Info) []byte {
	out := make([]byte, 24)
	binary.LittleEndian.PutUint32(out[0:], uint32(info.Kind))
	binary.LittleEndian.PutUint32(out[4:], info.Size)
	binary.LittleEndian.PutUint32(out[8:], info.Mode)
	binary.LittleEndian.PutUint32(out[12:], uint32(info.Nlink))
	binary.LittleEndian.PutUint64(out[16:], info.Mtime)
	return out
}

func (k *Kernel) sysStat(p *Process, pathAddr, buf uint32, follow bool) uint32 {
	path, ok := p.readPath(pathAddr)
	if !ok {
		return errno(sys.EFAULT)
	}
	info, err := k.FS.Stat(path, follow)
	if err != nil {
		return vfsErrno(err)
	}
	if err := p.Mem.UserWrite(buf, statBuf(info)); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

func (k *Kernel) sysFstat(p *Process, fd, buf uint32) uint32 {
	e := p.fd(fd)
	if e == nil {
		return errno(sys.EBADF)
	}
	if e.kind != fdFile {
		k.writeZeros(p, buf, 24)
		return 0
	}
	if err := p.Mem.UserWrite(buf, statBuf(k.FS.InfoOf(e.node))); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

func (k *Kernel) sysLseek(p *Process, fd, off, whence uint32) uint32 {
	e := p.fd(fd)
	if e == nil || e.kind != fdFile {
		return errno(sys.EBADF)
	}
	var base uint32
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = e.offset
	case SeekEnd:
		base = k.FS.NodeSize(e.node)
	default:
		return errno(sys.EINVAL)
	}
	e.offset = base + off
	return e.offset
}

func (k *Kernel) sysBrk(p *Process, addr uint32) uint32 {
	if addr == 0 {
		return p.brk
	}
	start := heapStartOf(p)
	ceiling := p.Mem.Limit() - DefaultStackSize
	if p.pager != nil {
		// Paged mode: the mmap arena sits between heap and stack.
		ceiling = p.pager.pt.Base()
	}
	if addr < start || addr >= ceiling {
		return errno(sys.EINVAL)
	}
	p.brk = addr
	p.Mem.Map(vm.Segment{Name: "heap", Start: start, End: addr, Perms: vm.PermRead | vm.PermWrite})
	return p.brk
}

func heapStartOf(p *Process) uint32 {
	for _, s := range p.Mem.Segments() {
		if s.Name == "heap" {
			return s.Start
		}
	}
	return p.brk
}

func (k *Kernel) sysMmap(p *Process, length uint32) uint32 {
	// Anonymous mapping from the top of the heap.
	base := p.brk
	newBrk := (base + length + 0xfff) &^ 0xfff
	if r := k.sysBrk(p, newBrk); int32(r) < 0 {
		return r
	}
	return base
}

func (k *Kernel) sysGettimeofday(p *Process, buf uint32) uint32 {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out[0:], uint32(p.CPU.Cycles/1_000_000))
	binary.LittleEndian.PutUint32(out[4:], uint32(p.CPU.Cycles%1_000_000))
	if err := p.Mem.UserWrite(buf, out); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

func (k *Kernel) sysTime(p *Process, buf uint32) uint32 {
	secs := uint32(p.CPU.Cycles / 1_000_000)
	if buf != 0 {
		out := make([]byte, 4)
		binary.LittleEndian.PutUint32(out, secs)
		if err := p.Mem.UserWrite(buf, out); err != nil {
			return errno(sys.EFAULT)
		}
	}
	return secs
}

func (k *Kernel) sysReadlink(p *Process, pathAddr, buf, n uint32) uint32 {
	path, ok := p.readPath(pathAddr)
	if !ok {
		return errno(sys.EFAULT)
	}
	target, err := k.FS.Readlink(path)
	if err != nil {
		return vfsErrno(err)
	}
	b := []byte(target)
	if uint32(len(b)) > n {
		b = b[:n]
	}
	if err := p.Mem.UserWrite(buf, b); err != nil {
		return errno(sys.EFAULT)
	}
	return uint32(len(b))
}

func (k *Kernel) sysSymlink(p *Process, targetAddr, linkAddr uint32) uint32 {
	target, err := p.Mem.CString(targetAddr, 4096)
	if err != nil {
		return errno(sys.EFAULT)
	}
	link, ok := p.readPath(linkAddr)
	if !ok {
		return errno(sys.EFAULT)
	}
	if err := k.FS.Symlink(target, link); err != nil {
		return vfsErrno(err)
	}
	return 0
}

func (k *Kernel) sysChdir(p *Process, pathAddr uint32) uint32 {
	path, ok := p.readPath(pathAddr)
	if !ok {
		return errno(sys.EFAULT)
	}
	norm, err := k.FS.Normalize(path)
	if err != nil {
		return vfsErrno(err)
	}
	node, err := k.FS.Lookup(norm)
	if err != nil {
		return vfsErrno(err)
	}
	if node.Kind != vfs.KindDir {
		return errno(sys.ENOTDIR)
	}
	p.cwd = norm
	return 0
}

func (k *Kernel) sysGetcwd(p *Process, buf, n uint32) uint32 {
	b := append([]byte(p.cwd), 0)
	if uint32(len(b)) > n {
		return errno(sys.EINVAL)
	}
	if err := p.Mem.UserWrite(buf, b); err != nil {
		return errno(sys.EFAULT)
	}
	return uint32(len(b))
}

func (k *Kernel) sysDup(p *Process, fd uint32) uint32 {
	e := p.fd(fd)
	if e == nil {
		return errno(sys.EBADF)
	}
	cp := *e
	nfd, ok := p.allocFD(&cp)
	if !ok {
		return errno(sys.ENFILE)
	}
	return uint32(nfd)
}

func (k *Kernel) sysDup2(p *Process, fd, newfd uint32) uint32 {
	e := p.fd(fd)
	if e == nil || newfd >= maxFDs {
		return errno(sys.EBADF)
	}
	for int(newfd) >= len(p.fds) {
		p.fds = append(p.fds, nil)
	}
	cp := *e
	p.fds[newfd] = &cp
	return newfd
}

func (k *Kernel) sysPipe(p *Process, buf uint32) uint32 {
	pb := &pipeBuf{}
	r, ok1 := p.allocFD(&fdEntry{kind: fdPipeR, pipe: pb})
	w, ok2 := p.allocFD(&fdEntry{kind: fdPipeW, pipe: pb})
	if !ok1 || !ok2 {
		return errno(sys.ENFILE)
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint32(out[0:], uint32(r))
	binary.LittleEndian.PutUint32(out[4:], uint32(w))
	if err := p.Mem.UserWrite(buf, out); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

func (k *Kernel) sysExecve(p *Process, pathAddr uint32) (uint32, bool) {
	path, ok := p.readPath(pathAddr)
	if !ok {
		return errno(sys.EFAULT), false
	}
	b, err := k.FS.ReadFile(path)
	if err != nil {
		return vfsErrno(err), false
	}
	f, err := binfmt.Read(b)
	if err != nil {
		return errno(sys.EINVAL), false
	}
	if err := p.loadImage(f); err != nil {
		return errno(sys.EINVAL), false
	}
	p.Name = path
	p.CPU.Cycles += 20000 // exec cost: address space teardown + load
	return 0, false
}

func (k *Kernel) sysKill(p *Process, pid, sig uint32) (uint32, bool) {
	if pid == uint32(p.PID) && sig == 9 {
		p.Exited = true
		p.Code = 128 + 9
		return 0, true
	}
	return 0, false
}

func (k *Kernel) sysSigaction(p *Process, sig, act, oldact uint32) uint32 {
	if oldact != 0 {
		old := make([]byte, 4)
		binary.LittleEndian.PutUint32(old, p.sigHandlers[sig])
		if err := p.Mem.UserWrite(oldact, old); err != nil {
			return errno(sys.EFAULT)
		}
	}
	if act != 0 {
		h, err := p.Mem.KernelLoad32(act)
		if err != nil {
			return errno(sys.EFAULT)
		}
		p.sigHandlers[sig] = h
	}
	return 0
}

func (k *Kernel) sysFcntl(p *Process, fd, cmd, arg uint32) uint32 {
	e := p.fd(fd)
	if e == nil {
		return errno(sys.EBADF)
	}
	switch cmd {
	case FGetFL:
		if e.kind == fdSocket && e.sock != nil && e.sock.nonblock {
			return ONonblock
		}
		return 0
	case FSetFL:
		// Only sockets carry a blocking mode; other descriptors accept
		// and ignore the flags (the historical stub behaviour).
		if e.kind == fdSocket && e.sock != nil {
			e.sock.nonblock = arg&ONonblock != 0
		}
		return 0
	default:
		return 0
	}
}

func (k *Kernel) sysGetdirentries(p *Process, fd, buf, n uint32) uint32 {
	e := p.fd(fd)
	if e == nil || e.kind != fdFile {
		return errno(sys.EBADF)
	}
	names, err := k.FS.ReadDir(e.path)
	if err != nil {
		return vfsErrno(err)
	}
	// offset is the index of the next entry to deliver.
	var out []byte
	idx := e.offset
	for int(idx) < len(names) {
		entry := append([]byte(names[idx]), 0)
		if uint32(len(out)+len(entry)) > n {
			break
		}
		out = append(out, entry...)
		idx++
	}
	e.offset = idx
	if len(out) == 0 {
		return 0
	}
	if err := p.Mem.UserWrite(buf, out); err != nil {
		return errno(sys.EFAULT)
	}
	return uint32(len(out))
}

func (k *Kernel) sysStatfs(p *Process, buf uint32) uint32 {
	out := make([]byte, 16)
	binary.LittleEndian.PutUint32(out[0:], 4096)        // block size
	binary.LittleEndian.PutUint32(out[4:], 1<<20)       // blocks
	binary.LittleEndian.PutUint32(out[8:], 1<<19)       // free
	binary.LittleEndian.PutUint32(out[12:], 0x53454c46) // fs type "SELF"
	if err := p.Mem.UserWrite(buf, out); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

func (k *Kernel) sysUname(p *Process, buf uint32) uint32 {
	out := make([]byte, 32)
	name := "ascsim-linux"
	if k.Personality == OpenBSD {
		name = "ascsim-openbsd"
	}
	copy(out, name)
	copy(out[16:], "1.0")
	if err := p.Mem.UserWrite(buf, out); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

func (k *Kernel) sysGethostname(p *Process, buf, n uint32) uint32 {
	b := []byte("ascsim\x00")
	if uint32(len(b)) > n {
		b = b[:n]
	}
	if err := p.Mem.UserWrite(buf, b); err != nil {
		return errno(sys.EFAULT)
	}
	return 0
}

// iovec is {ptr uint32, len uint32}.
func (k *Kernel) sysWritev(p *Process, fd, iov, cnt uint32) uint32 {
	if cnt > 64 {
		return errno(sys.EINVAL)
	}
	var total uint32
	for i := uint32(0); i < cnt; i++ {
		ptr, err1 := p.Mem.KernelLoad32(iov + 8*i)
		n, err2 := p.Mem.KernelLoad32(iov + 8*i + 4)
		if err1 != nil || err2 != nil {
			return errno(sys.EFAULT)
		}
		r := k.sysWrite(p, fd, ptr, n)
		if int32(r) < 0 {
			return r
		}
		total += r
	}
	return total
}

func (k *Kernel) sysReadv(p *Process, fd, iov, cnt uint32) uint32 {
	if cnt > 64 {
		return errno(sys.EINVAL)
	}
	var total uint32
	for i := uint32(0); i < cnt; i++ {
		ptr, err1 := p.Mem.KernelLoad32(iov + 8*i)
		n, err2 := p.Mem.KernelLoad32(iov + 8*i + 4)
		if err1 != nil || err2 != nil {
			return errno(sys.EFAULT)
		}
		r := k.sysRead(p, fd, ptr, n)
		if int32(r) < 0 {
			return r
		}
		total += r
		if r < n {
			break
		}
	}
	return total
}

func (k *Kernel) sysAccess(p *Process, pathAddr uint32) uint32 {
	path, ok := p.readPath(pathAddr)
	if !ok {
		return errno(sys.EFAULT)
	}
	if !k.FS.Exists(path) {
		return errno(sys.ENOENT)
	}
	return 0
}

func (k *Kernel) sysFtruncate(p *Process, fd, size uint32) uint32 {
	e := p.fd(fd)
	if e == nil || e.kind != fdFile {
		return errno(sys.EBADF)
	}
	if err := k.FS.TruncateNode(e.node, size); err != nil {
		return vfsErrno(err)
	}
	return 0
}

func (k *Kernel) sysPRead(p *Process, fd, buf, n, off uint32) uint32 {
	e := p.fd(fd)
	if e == nil || e.kind != fdFile {
		return errno(sys.EBADF)
	}
	saved := e.offset
	e.offset = off
	r := k.sysRead(p, fd, buf, n)
	e.offset = saved
	return r
}

func (k *Kernel) sysPWrite(p *Process, fd, buf, n, off uint32) uint32 {
	e := p.fd(fd)
	if e == nil || e.kind != fdFile {
		return errno(sys.EBADF)
	}
	saved := e.offset
	e.offset = off
	r := k.sysWrite(p, fd, buf, n)
	e.offset = saved
	return r
}
