package kernel

import (
	"encoding/binary"
	"testing"

	anet "asc/internal/net"
	"asc/internal/sys"
)

// putPollSet writes an encoded pollfd set into guest memory and returns
// its address.
func putPollSet(t *testing.T, p *Process, addr uint32, set []anet.PollFD) {
	t.Helper()
	if err := p.Mem.UserWrite(addr, anet.EncodePollSet(set)); err != nil {
		t.Fatalf("write poll set: %v", err)
	}
}

// readPollSet reads nfds entries back from guest memory.
func readPollSet(t *testing.T, p *Process, addr, nfds uint32) []anet.PollFD {
	t.Helper()
	raw, err := p.Mem.KernelRead(addr, nfds*anet.PollFDSize)
	if err != nil {
		t.Fatalf("read poll set: %v", err)
	}
	set, err := anet.DecodePollSet(raw)
	if err != nil {
		t.Fatalf("decode poll set: %v", err)
	}
	return set
}

// TestFcntlNonblock covers the F_GETFL/F_SETFL round trip and the
// EAGAIN discipline it buys: a nonblocking accept on an empty backlog
// and a nonblocking recvfrom on an empty inbox fail with EAGAIN, and
// clearing the flag restores the gate path.
func TestFcntlNonblock(t *testing.T) {
	k := netKernel(t)
	p := newProc(t, k)

	fd := call(k, p, sys.SysSocket, 2, 1, 0)
	if r := call(k, p, sys.SysFcntl, fd, FGetFL, 0); r != 0 {
		t.Errorf("F_GETFL fresh socket = %#x, want 0", r)
	}
	if r := call(k, p, sys.SysFcntl, fd, FSetFL, ONonblock); r != 0 {
		t.Fatalf("F_SETFL = %d", int32(r))
	}
	if r := call(k, p, sys.SysFcntl, fd, FGetFL, 0); r != ONonblock {
		t.Errorf("F_GETFL after set = %#x, want %#x", r, ONonblock)
	}
	if r := call(k, p, sys.SysFcntl, fd, FSetFL, 0); r != 0 {
		t.Fatalf("F_SETFL clear = %d", int32(r))
	}
	if r := call(k, p, sys.SysFcntl, fd, FGetFL, 0); r != 0 {
		t.Errorf("F_GETFL after clear = %#x, want 0", r)
	}
	// Non-socket descriptors accept and ignore the flag.
	if r := call(k, p, sys.SysFcntl, 1, FSetFL, ONonblock); r != 0 {
		t.Errorf("F_SETFL on console = %d", int32(r))
	}
	if r := call(k, p, sys.SysFcntl, 1, FGetFL, 0); r != 0 {
		t.Errorf("F_GETFL on console = %#x, want 0", r)
	}
	if r := call(k, p, sys.SysFcntl, 99, FGetFL, 0); int32(r) != -sys.EBADF {
		t.Errorf("fcntl bad fd = %d, want -EBADF", int32(r))
	}

	// EAGAIN discipline on a listening socket with an empty backlog.
	if r := call(k, p, sys.SysBind, fd, anet.EncodeAddr(70)); r != 0 {
		t.Fatalf("bind = %d", int32(r))
	}
	if r := call(k, p, sys.SysListen, fd, 4); r != 0 {
		t.Fatalf("listen = %d", int32(r))
	}
	if r := call(k, p, sys.SysFcntl, fd, FSetFL, ONonblock); r != 0 {
		t.Fatalf("F_SETFL = %d", int32(r))
	}
	if r := call(k, p, sys.SysAccept, fd, 0); int32(r) != -sys.EAGAIN {
		t.Errorf("nonblocking accept = %d, want -EAGAIN", int32(r))
	}

	// EAGAIN discipline on an empty socketpair inbox.
	out := scratch(p)
	if r := call(k, p, sys.SysSocketpair, 1, 1, 0, out); r != 0 {
		t.Fatalf("socketpair = %d", int32(r))
	}
	b, _ := p.Mem.KernelRead(out, 8)
	a := binary.LittleEndian.Uint32(b)
	if r := call(k, p, sys.SysFcntl, a, FSetFL, ONonblock); r != 0 {
		t.Fatalf("F_SETFL pair = %d", int32(r))
	}
	buf := scratch(p) + 64
	if r := call(k, p, sys.SysRecvfrom, a, buf, 16, 0, 0); int32(r) != -sys.EAGAIN {
		t.Errorf("nonblocking recvfrom = %d, want -EAGAIN", int32(r))
	}
}

// TestPollSyscall drives poll over a socketpair, a listener, a static
// console fd, and a bad fd, checking the return count, the written-back
// revents, and the argument validation arms.
func TestPollSyscall(t *testing.T) {
	k := netKernel(t)
	p := newProc(t, k)

	out := scratch(p)
	if r := call(k, p, sys.SysSocketpair, 1, 1, 0, out); r != 0 {
		t.Fatalf("socketpair = %d", int32(r))
	}
	b, _ := p.Mem.KernelRead(out, 8)
	a, c := binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint32(b[4:])

	// Idle pair, POLLIN only: nothing ready at timeout 0.
	setAddr := scratch(p) + 128
	putPollSet(t, p, setAddr, []anet.PollFD{{FD: c, Events: anet.POLLIN}})
	if r := call(k, p, sys.SysPoll, setAddr, 1, 0); r != 0 {
		t.Errorf("poll idle = %d, want 0", int32(r))
	}
	// POLLIN|POLLOUT: writable counts.
	putPollSet(t, p, setAddr, []anet.PollFD{{FD: c, Events: anet.POLLIN | anet.POLLOUT}})
	if r := call(k, p, sys.SysPoll, setAddr, 1, 0); r != 1 {
		t.Errorf("poll writable = %d, want 1", int32(r))
	}
	if set := readPollSet(t, p, setAddr, 1); set[0].REvents != anet.POLLOUT {
		t.Errorf("revents = %#x, want POLLOUT", set[0].REvents)
	}
	// Queue a message: POLLIN fires even with a blocking timeout (data
	// is already there, so nothing parks).
	buf := scratch(p) + 256
	putStr(t, p, buf, "x")
	if n := call(k, p, sys.SysSendto, a, buf, 1, 0, 0); n != 1 {
		t.Fatalf("sendto = %d", int32(n))
	}
	putPollSet(t, p, setAddr, []anet.PollFD{{FD: c, Events: anet.POLLIN}})
	if r := call(k, p, sys.SysPoll, setAddr, 1, 0xffffffff); r != 1 {
		t.Errorf("poll with data = %d, want 1", int32(r))
	}
	if set := readPollSet(t, p, setAddr, 1); set[0].REvents != anet.POLLIN {
		t.Errorf("revents = %#x, want POLLIN", set[0].REvents)
	}

	// Mixed set: listener with a pending connection, console (static),
	// bad fd (POLLNVAL) — all three count as ready.
	srv := call(k, p, sys.SysSocket, 2, 1, 0)
	if r := call(k, p, sys.SysBind, srv, anet.EncodeAddr(71)); r != 0 {
		t.Fatalf("bind = %d", int32(r))
	}
	if r := call(k, p, sys.SysListen, srv, 4); r != 0 {
		t.Fatalf("listen = %d", int32(r))
	}
	cli := call(k, p, sys.SysSocket, 2, 1, 0)
	if r := call(k, p, sys.SysConnect, cli, anet.EncodeAddr(71)); r != 0 {
		t.Fatalf("connect = %d", int32(r))
	}
	putPollSet(t, p, setAddr, []anet.PollFD{
		{FD: srv, Events: anet.POLLIN},
		{FD: 1, Events: anet.POLLOUT},
		{FD: 99, Events: anet.POLLIN},
	})
	if r := call(k, p, sys.SysPoll, setAddr, 3, 0); r != 3 {
		t.Errorf("poll mixed = %d, want 3", int32(r))
	}
	set := readPollSet(t, p, setAddr, 3)
	if set[0].REvents != anet.POLLIN || set[1].REvents != anet.POLLOUT || set[2].REvents != anet.POLLNVAL {
		t.Errorf("mixed revents = %#x %#x %#x", set[0].REvents, set[1].REvents, set[2].REvents)
	}

	// Validation arms.
	if r := call(k, p, sys.SysPoll, setAddr, anet.MaxPollFDs+1, 0); int32(r) != -sys.EINVAL {
		t.Errorf("poll oversized = %d, want -EINVAL", int32(r))
	}
	if r := call(k, p, sys.SysPoll, 0xffff_0000, 1, 0); int32(r) != -sys.EFAULT {
		t.Errorf("poll bad addr = %d, want -EFAULT", int32(r))
	}
	if r := call(k, p, sys.SysPoll, setAddr, 0, 0); r != 0 {
		t.Errorf("poll nfds=0 = %d, want 0", int32(r))
	}
}

// TestSelectSyscall covers the bitmap form: data-ready read fd, always
// writable socket, cleared except set, and the EBADF arm.
func TestSelectSyscall(t *testing.T) {
	k := netKernel(t)
	p := newProc(t, k)

	out := scratch(p)
	if r := call(k, p, sys.SysSocketpair, 1, 1, 0, out); r != 0 {
		t.Fatalf("socketpair = %d", int32(r))
	}
	b, _ := p.Mem.KernelRead(out, 8)
	a, c := binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint32(b[4:])
	buf := scratch(p) + 64
	putStr(t, p, buf, "y")
	if n := call(k, p, sys.SysSendto, a, buf, 1, 0, 0); n != 1 {
		t.Fatalf("sendto = %d", int32(n))
	}

	nfds := uint32(32)
	rAddr, wAddr := scratch(p)+128, scratch(p)+192
	putWord := func(addr, w uint32) {
		var raw [4]byte
		binary.LittleEndian.PutUint32(raw[:], w)
		if err := p.Mem.UserWrite(addr, raw[:]); err != nil {
			t.Fatalf("write fd set: %v", err)
		}
	}
	word := func(addr uint32) uint32 {
		raw, _ := p.Mem.KernelRead(addr, 4)
		return binary.LittleEndian.Uint32(raw)
	}
	// Read-interest in c (has data), write-interest in a (has room):
	// both fire, timeout pointer nonzero so the call never parks.
	putWord(rAddr, 1<<c)
	putWord(wAddr, 1<<a)
	if r := call(k, p, sys.SysSelect, nfds, rAddr, wAddr, 0, buf); r != 2 {
		t.Errorf("select = %d, want 2", int32(r))
	}
	if got := word(rAddr); got != 1<<c {
		t.Errorf("read set = %#x, want %#x", got, uint32(1)<<c)
	}
	if got := word(wAddr); got != 1<<a {
		t.Errorf("write set = %#x, want %#x", got, uint32(1)<<a)
	}
	// Idle read set: cleared, zero ready.
	putWord(rAddr, 1<<a)
	if r := call(k, p, sys.SysSelect, nfds, rAddr, 0, 0, buf); r != 0 {
		t.Errorf("select idle = %d, want 0", int32(r))
	}
	if got := word(rAddr); got != 0 {
		t.Errorf("idle read set = %#x, want 0", got)
	}
	// A bad fd in the set is EBADF (select semantics, not POLLNVAL).
	putWord(rAddr, 1<<20)
	if r := call(k, p, sys.SysSelect, nfds, rAddr, 0, 0, buf); int32(r) != -sys.EBADF {
		t.Errorf("select bad fd = %d, want -EBADF", int32(r))
	}
	if r := call(k, p, sys.SysSelect, selectMaxFDs+1, rAddr, 0, 0, buf); int32(r) != -sys.EINVAL {
		t.Errorf("select oversized = %d, want -EINVAL", int32(r))
	}
}

// TestPollLegacyStub: without a network, poll and select keep the
// historical nothing-is-ready stub behaviour.
func TestPollLegacyStub(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	setAddr := scratch(p)
	putPollSet(t, p, setAddr, []anet.PollFD{{FD: 1, Events: anet.POLLIN}})
	if r := call(k, p, sys.SysPoll, setAddr, 1, 0); r != 0 {
		t.Errorf("legacy poll = %d, want 0", int32(r))
	}
	if r := call(k, p, sys.SysSelect, 4, 0, 0, 0, 0); r != 0 {
		t.Errorf("legacy select = %d, want 0", int32(r))
	}
}
