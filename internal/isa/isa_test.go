package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Instr{
		{Op: OpNOP},
		{Op: OpMOVI, Rd: R3, Imm: 0xdeadbeef},
		{Op: OpLOAD, Rd: R1, Rs: SP, Imm: 0xfffffffc}, // -4 offset
		{Op: OpSTORE, Rd: FP, Rs: R2, Imm: 8},
		{Op: OpADD, Rd: R1, Rs: R2, Rt: R3},
		{Op: OpBEQ, Rs: R1, Rt: R2, Imm: 0x1040},
		{Op: OpCALL, Imm: 0x2000},
		{Op: OpSYSCALL},
		{Op: OpASYSCALL},
		{Op: OpRET},
	}
	var buf [InstrSize]byte
	for _, in := range tests {
		in.Encode(buf[:])
		got, err := Decode(buf[:])
		if err != nil {
			t.Fatalf("Decode(%v): %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: got %v, want %v", got, in)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	var buf [InstrSize]byte
	if _, err := Decode(buf[:]); err == nil {
		t.Error("Decode of zero bytes: want error (opcode 0 invalid)")
	}
	buf[0] = byte(opMax)
	if _, err := Decode(buf[:]); err == nil {
		t.Error("Decode of opMax: want error")
	}
	buf[0] = byte(OpMOV)
	buf[1] = NumRegs // register out of range
	if _, err := Decode(buf[:]); err == nil {
		t.Error("Decode with register 16: want error")
	}
	if _, err := Decode(buf[:4]); err == nil {
		t.Error("Decode of short buffer: want error")
	}
}

func TestPropertyEncodeDecode(t *testing.T) {
	f := func(op, rd, rs, rt uint8, imm uint32) bool {
		in := Instr{
			Op:  Op(op%uint8(opMax-1) + 1),
			Rd:  Reg(rd % NumRegs),
			Rs:  Reg(rs % NumRegs),
			Rt:  Reg(rt % NumRegs),
			Imm: imm,
		}
		var buf [InstrSize]byte
		in.Encode(buf[:])
		got, err := Decode(buf[:])
		return err == nil && got == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpByName(t *testing.T) {
	for op, name := range opNames {
		got, ok := OpByName(name)
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v; want %v, true", name, got, ok, op)
		}
	}
	if _, ok := OpByName("BOGUS"); ok {
		t.Error("OpByName(BOGUS) should fail")
	}
}

func TestClassifiers(t *testing.T) {
	tests := []struct {
		in               Instr
		branch, cond, sc bool
	}{
		{Instr{Op: OpJMP}, true, false, false},
		{Instr{Op: OpBNE}, true, true, false},
		{Instr{Op: OpCALL}, true, false, false},
		{Instr{Op: OpRET}, true, false, false},
		{Instr{Op: OpSYSCALL}, false, false, true},
		{Instr{Op: OpASYSCALL}, false, false, true},
		{Instr{Op: OpADD}, false, false, false},
	}
	for _, tt := range tests {
		if got := tt.in.IsBranch(); got != tt.branch {
			t.Errorf("%v.IsBranch() = %v, want %v", tt.in.Op, got, tt.branch)
		}
		if got := tt.in.IsCondBranch(); got != tt.cond {
			t.Errorf("%v.IsCondBranch() = %v, want %v", tt.in.Op, got, tt.cond)
		}
		if got := tt.in.IsSyscall(); got != tt.sc {
			t.Errorf("%v.IsSyscall() = %v, want %v", tt.in.Op, got, tt.sc)
		}
	}
}

func TestDefUses(t *testing.T) {
	in := Instr{Op: OpADD, Rd: R1, Rs: R2, Rt: R3}
	if d, ok := in.Def(); !ok || d != R1 {
		t.Errorf("ADD Def = %v, %v", d, ok)
	}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != R2 || uses[1] != R3 {
		t.Errorf("ADD Uses = %v", uses)
	}
	sc := Instr{Op: OpSYSCALL}
	if d, ok := sc.Def(); !ok || d != R0 {
		t.Errorf("SYSCALL Def = %v, %v; want R0", d, ok)
	}
	if got := len(sc.Uses(nil)); got != 6 {
		t.Errorf("SYSCALL uses %d regs, want 6", got)
	}
	asc := Instr{Op: OpASYSCALL}
	if got := len(asc.Uses(nil)); got != 7 {
		t.Errorf("ASYSCALL uses %d regs, want 7", got)
	}
	st := Instr{Op: OpSTORE, Rd: R4, Rs: R5}
	if _, ok := st.Def(); ok {
		t.Error("STORE should not define a register")
	}
}

func TestRegString(t *testing.T) {
	if SP.String() != "sp" || FP.String() != "fp" || R3.String() != "r3" {
		t.Errorf("register names wrong: %s %s %s", SP, FP, R3)
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpNOP}, "NOP"},
		{Instr{Op: OpMOV, Rd: R1, Rs: R2}, "MOV r1, r2"},
		{Instr{Op: OpMOVI, Rd: R3, Imm: 0x10}, "MOVI r3, 0x10"},
		{Instr{Op: OpLOAD, Rd: R1, Rs: SP, Imm: 4}, "LOAD r1, [sp+4]"},
		{Instr{Op: OpSTORE, Rd: FP, Rs: R2, Imm: 0xfffffff8}, "STORE [fp+-8], r2"},
		{Instr{Op: OpADD, Rd: R1, Rs: R2, Rt: R3}, "ADD r1, r2, r3"},
		{Instr{Op: OpADDI, Rd: R1, Rs: R2, Imm: 0xffffffff}, "ADDI r1, r2, -1"},
		{Instr{Op: OpJMP, Imm: 0x1000}, "JMP 0x1000"},
		{Instr{Op: OpBEQ, Rs: R1, Rt: R2, Imm: 0x2000}, "BEQ r1, r2, 0x2000"},
		{Instr{Op: OpCALL, Imm: 0x3000}, "CALL 0x3000"},
		{Instr{Op: OpCALLR, Rs: R4}, "CALLR r4"},
		{Instr{Op: OpPUSH, Rs: R5}, "PUSH r5"},
		{Instr{Op: OpPOP, Rd: R6}, "POP r6"},
		{Instr{Op: OpRET}, "RET"},
		{Instr{Op: OpSYSCALL}, "SYSCALL"},
		{Instr{Op: OpASYSCALL}, "ASYSCALL"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.in.Op, got, tt.want)
		}
	}
	// Unknown opcode renders without panicking.
	if got := Op(200).String(); got == "" {
		t.Error("unknown opcode String empty")
	}
}

func TestHasImmTarget(t *testing.T) {
	for _, op := range []Op{OpJMP, OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU, OpCALL} {
		if !(Instr{Op: op}).HasImmTarget() {
			t.Errorf("%v should have an immediate target", op)
		}
	}
	for _, op := range []Op{OpCALLR, OpRET, OpMOVI, OpSYSCALL} {
		if (Instr{Op: op}).HasImmTarget() {
			t.Errorf("%v should not have an immediate target", op)
		}
	}
}
