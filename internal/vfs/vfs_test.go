package vfs

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func newTestFS(t *testing.T) *FS {
	t.Helper()
	fs := New()
	for _, d := range []string{"/tmp", "/etc", "/bin", "/home", "/home/user"} {
		if err := fs.Mkdir(d, 0o755); err != nil {
			t.Fatalf("Mkdir(%s): %v", d, err)
		}
	}
	if err := fs.WriteFile("/etc/passwd", []byte("root:0:0\n"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return fs
}

func TestCreateReadWrite(t *testing.T) {
	fs := newTestFS(t)
	n, err := fs.Create("/tmp/a.txt", 0o644, false)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := fs.WriteAt(n, 0, []byte("hello world")); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if _, err := fs.WriteAt(n, 6, []byte("VFS")); err != nil {
		t.Fatalf("WriteAt overwrite: %v", err)
	}
	buf := make([]byte, 32)
	got, err := fs.ReadAt(n, 0, buf)
	if err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(buf[:got]) != "hello VFSld" {
		t.Errorf("content = %q", buf[:got])
	}
	// Read past EOF.
	if got, _ := fs.ReadAt(n, 100, buf); got != 0 {
		t.Errorf("read past EOF returned %d bytes", got)
	}
	// Sparse write grows the file.
	if _, err := fs.WriteAt(n, 20, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if n.Size() != 21 {
		t.Errorf("size after sparse write = %d, want 21", n.Size())
	}
}

func TestCreateTruncates(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile("/tmp/f", []byte("old content"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Create("/tmp/f", 0o644, true)
	if err != nil {
		t.Fatalf("Create trunc: %v", err)
	}
	if n.Size() != 0 {
		t.Errorf("size after truncating create = %d", n.Size())
	}
}

func TestLookupErrors(t *testing.T) {
	fs := newTestFS(t)
	tests := []struct {
		path string
		want error
	}{
		{"/nope", ErrNotExist},
		{"/nope/deeper", ErrNotExist},
		{"/etc/passwd/x", ErrNotDir},
		{"relative", ErrInvalid},
		{"", ErrInvalid},
		{"/" + strings.Repeat("a", 300), ErrNameLong},
	}
	for _, tt := range tests {
		if _, err := fs.Lookup(tt.path); !errors.Is(err, tt.want) {
			t.Errorf("Lookup(%q) = %v, want %v", tt.path, err, tt.want)
		}
	}
}

func TestSymlinks(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Symlink("/etc/passwd", "/tmp/pw"); err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	b, err := fs.ReadFile("/tmp/pw")
	if err != nil || string(b) != "root:0:0\n" {
		t.Fatalf("ReadFile through symlink: %q, %v", b, err)
	}
	// Lstat does not follow.
	n, err := fs.Lstat("/tmp/pw")
	if err != nil || n.Kind != KindSymlink {
		t.Errorf("Lstat = %v, %v", n.Kind, err)
	}
	// Readlink.
	target, err := fs.Readlink("/tmp/pw")
	if err != nil || target != "/etc/passwd" {
		t.Errorf("Readlink = %q, %v", target, err)
	}
	if _, err := fs.Readlink("/etc/passwd"); !errors.Is(err, ErrInvalid) {
		t.Errorf("Readlink on file = %v", err)
	}
	// Relative symlink.
	if err := fs.Symlink("passwd", "/etc/pw2"); err != nil {
		t.Fatal(err)
	}
	if b, err := fs.ReadFile("/etc/pw2"); err != nil || string(b) != "root:0:0\n" {
		t.Errorf("relative symlink read: %q, %v", b, err)
	}
	// Symlink to directory used mid-path.
	if err := fs.Symlink("/etc", "/tmp/etclink"); err != nil {
		t.Fatal(err)
	}
	if b, err := fs.ReadFile("/tmp/etclink/passwd"); err != nil || string(b) != "root:0:0\n" {
		t.Errorf("dir symlink traversal: %q, %v", b, err)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Symlink("/tmp/b", "/tmp/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/tmp/a", "/tmp/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup("/tmp/a"); !errors.Is(err, ErrLoop) {
		t.Errorf("loop lookup = %v, want ErrLoop", err)
	}
}

func TestNormalize(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Symlink("/etc/passwd", "/tmp/foo"); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		in, want string
	}{
		{"/tmp/foo", "/etc/passwd"}, // the §5.4 attack scenario
		{"/etc/./passwd", "/etc/passwd"},
		{"/etc/../etc/passwd", "/etc/passwd"},
		{"/", "/"},
		{"//etc///passwd", "/etc/passwd"},
		{"/tmp/..", "/"},
	}
	for _, tt := range tests {
		got, err := fs.Normalize(tt.in)
		if err != nil || got != tt.want {
			t.Errorf("Normalize(%q) = %q, %v; want %q", tt.in, got, err, tt.want)
		}
	}
	if _, err := fs.Normalize("/no/such"); err == nil {
		t.Error("Normalize of missing path should fail")
	}
}

func TestMkdirRmdir(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Mkdir("/tmp/d", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/tmp/d", 0o755); !errors.Is(err, ErrExist) {
		t.Errorf("duplicate mkdir = %v", err)
	}
	if err := fs.WriteFile("/tmp/d/f", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/tmp/d"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("rmdir non-empty = %v", err)
	}
	if err := fs.Unlink("/tmp/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/tmp/d"); err != nil {
		t.Errorf("rmdir empty = %v", err)
	}
	if err := fs.Rmdir("/etc/passwd"); !errors.Is(err, ErrNotDir) {
		t.Errorf("rmdir file = %v", err)
	}
	if err := fs.Rmdir("/"); err == nil {
		t.Error("rmdir / should fail")
	}
}

func TestMkdirAll(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll("/a/b/c/d", 0o755); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Lookup("/a/b/c/d")
	if err != nil || n.Kind != KindDir {
		t.Errorf("MkdirAll result: %v, %v", n, err)
	}
	// Idempotent.
	if err := fs.MkdirAll("/a/b/c/d", 0o755); err != nil {
		t.Errorf("second MkdirAll: %v", err)
	}
}

func TestUnlinkSemantics(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Unlink("/etc"); !errors.Is(err, ErrIsDir) {
		t.Errorf("unlink dir = %v", err)
	}
	if err := fs.Unlink("/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/etc/passwd") {
		t.Error("file still exists after unlink")
	}
	// Unlink a symlink removes the link, not the target.
	if err := fs.WriteFile("/tmp/t", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink("/tmp/t", "/tmp/l"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Unlink("/tmp/l"); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists("/tmp/t") {
		t.Error("unlinking symlink removed target")
	}
}

func TestHardLinks(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile("/tmp/orig", []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Link("/tmp/orig", "/tmp/alias"); err != nil {
		t.Fatal(err)
	}
	n, _ := fs.Lookup("/tmp/orig")
	if n.Nlink() != 2 {
		t.Errorf("nlink = %d, want 2", n.Nlink())
	}
	// Write through one name is visible through the other.
	if _, err := fs.WriteAt(n, 0, []byte("DATA")); err != nil {
		t.Fatal(err)
	}
	if b, _ := fs.ReadFile("/tmp/alias"); string(b) != "DATA" {
		t.Errorf("alias content = %q", b)
	}
	if err := fs.Unlink("/tmp/orig"); err != nil {
		t.Fatal(err)
	}
	if b, _ := fs.ReadFile("/tmp/alias"); string(b) != "DATA" {
		t.Errorf("alias content after unlink = %q", b)
	}
	if err := fs.Link("/etc", "/tmp/dirlink"); !errors.Is(err, ErrPermitted) {
		t.Errorf("hard link to dir = %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile("/tmp/a", []byte("A"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/tmp/b", []byte("B"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/tmp/a", "/tmp/b"); err != nil {
		t.Fatalf("Rename replace: %v", err)
	}
	if b, _ := fs.ReadFile("/tmp/b"); string(b) != "A" {
		t.Errorf("renamed content = %q", b)
	}
	if fs.Exists("/tmp/a") {
		t.Error("source still exists")
	}
	if err := fs.Rename("/tmp/missing", "/tmp/x"); !errors.Is(err, ErrNotExist) {
		t.Errorf("rename missing = %v", err)
	}
}

func TestReadDir(t *testing.T) {
	fs := newTestFS(t)
	names, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bin", "etc", "home", "tmp"}
	if len(names) != len(want) {
		t.Fatalf("ReadDir(/) = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("ReadDir[%d] = %q, want %q (sorted)", i, names[i], want[i])
		}
	}
	if _, err := fs.ReadDir("/etc/passwd"); !errors.Is(err, ErrNotDir) {
		t.Errorf("ReadDir(file) = %v", err)
	}
}

func TestTruncateAndChmod(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile("/tmp/f", []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate("/tmp/f", 4); err != nil {
		t.Fatal(err)
	}
	if b, _ := fs.ReadFile("/tmp/f"); string(b) != "0123" {
		t.Errorf("after shrink: %q", b)
	}
	if err := fs.Truncate("/tmp/f", 8); err != nil {
		t.Fatal(err)
	}
	if b, _ := fs.ReadFile("/tmp/f"); string(b) != "0123\x00\x00\x00\x00" {
		t.Errorf("after grow: %q", b)
	}
	if err := fs.Chmod("/tmp/f", 0o600); err != nil {
		t.Fatal(err)
	}
	if n, _ := fs.Lookup("/tmp/f"); n.Mode != 0o600 {
		t.Errorf("mode = %o", n.Mode)
	}
}

// Property: Normalize is idempotent for any path that resolves.
func TestPropertyNormalizeIdempotent(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Symlink("/etc", "/tmp/e"); err != nil {
		t.Fatal(err)
	}
	paths := []string{"/", "/etc", "/etc/passwd", "/tmp/e/passwd", "/tmp/../etc", "/home/user"}
	for _, p := range paths {
		n1, err := fs.Normalize(p)
		if err != nil {
			t.Fatalf("Normalize(%q): %v", p, err)
		}
		n2, err := fs.Normalize(n1)
		if err != nil || n1 != n2 {
			t.Errorf("Normalize not idempotent: %q -> %q -> %q (%v)", p, n1, n2, err)
		}
	}
}

// Property: random path strings never panic the walker.
func TestPropertyRandomPathsSafe(t *testing.T) {
	fs := newTestFS(t)
	f := func(s string) bool {
		_, _ = fs.Lookup(s)
		_, _ = fs.Normalize(s)
		_ = fs.Exists(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
