package net

import "testing"

// FuzzSockAddrDecode checks the by-value address codec invariants: a
// decoded address re-encodes to the same word, and every accepted word
// is exactly an AF_INET family byte plus a 16-bit port with the
// reserved bits clear.
func FuzzSockAddrDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(EncodeAddr(0))
	f.Add(EncodeAddr(80))
	f.Add(EncodeAddr(0xffff))
	f.Add(uint32(0x02010050))
	f.Add(uint32(0xffffffff))
	f.Fuzz(func(t *testing.T, v uint32) {
		a, ok := DecodeAddr(v)
		if !ok {
			if v>>24 == AFInet && v&0x00ff0000 == 0 {
				t.Fatalf("DecodeAddr(%#x) rejected a well-formed address", v)
			}
			return
		}
		if a.Family != AFInet {
			t.Fatalf("DecodeAddr(%#x) family = %d", v, a.Family)
		}
		if got := a.Encode(); got != v {
			t.Fatalf("re-encode %#x -> %#x", v, got)
		}
		if EncodeAddr(a.Port) != v {
			t.Fatalf("EncodeAddr(%d) != %#x", a.Port, v)
		}
	})
}
