package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"asc"
)

// helloSrc loops long enough to span many scheduler ticks at the test
// slice size, so mid-run director crashes land while the fleet is live.
const helloSrc = `
        .text
        .global main
main:
        MOVI r12, 200
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "hello, fleet\n"
`

// buildInstalled writes an ascinstall-processed hello binary to a temp
// file and returns its path.
func buildInstalled(t *testing.T, pass string) string {
	t.Helper()
	exe, err := asc.BuildProgram("hello", helloSrc, asc.Linux)
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	hardened, _, _, err := asc.Install(exe, "hello", asc.InstallOptions{Key: asc.NewKey(pass)})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	b, err := hardened.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	path := filepath.Join(t.TempDir(), "hello.self")
	if err := os.WriteFile(path, b, 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDirectorLossExitCode(t *testing.T) {
	exe := buildInstalled(t, "fleet-pass")
	var out, errb bytes.Buffer
	code := run([]string{
		"-key", "fleet-pass", "-nodes", "3", "-procs", "3", "-slice", "512", "-checkpoint-every", "512",
		"-durable-dir", "/director", "-kill-director", "-kill-tick", "2",
		exe,
	}, &out, &errb)
	if code != 123 {
		t.Fatalf("exit code %d, want 123 for director loss without standby\nstderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "director lost") {
		t.Errorf("stderr does not mention the director loss:\n%s", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected stdout with every process lost: %q", out.String())
	}
}

func TestStandbySurvivesDirectorCrash(t *testing.T) {
	exe := buildInstalled(t, "fleet-pass")
	var out, errb bytes.Buffer
	code := run([]string{
		"-key", "fleet-pass", "-nodes", "3", "-procs", "3", "-slice", "512", "-checkpoint-every", "512",
		"-durable-dir", "/director", "-standby", "-kill-director", "-kill-tick", "2",
		exe,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, want 0 with a standby attached\nstderr:\n%s", code, errb.String())
	}
	if out.String() != "hello, fleet\n" {
		t.Errorf("stdout %q, want clean program output", out.String())
	}
	if !strings.Contains(errb.String(), "standby takeover") || !strings.Contains(errb.String(), "term 2") {
		t.Errorf("stderr does not report the takeover:\n%s", errb.String())
	}
}

func TestStandbyRequiresDurableDir(t *testing.T) {
	exe := buildInstalled(t, "fleet-pass")
	var out, errb bytes.Buffer
	if code := run([]string{"-key", "fleet-pass", "-standby", exe}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2 for -standby without -durable-dir", code)
	}
	if code := run([]string{"-key", "fleet-pass", "-kill-director", exe}, &out, &errb); code != 2 {
		t.Fatalf("exit code %d, want 2 for -kill-director without -durable-dir", code)
	}
}

func TestPlainFleetStillRuns(t *testing.T) {
	exe := buildInstalled(t, "fleet-pass")
	var out, errb bytes.Buffer
	code := run([]string{"-key", "fleet-pass", "-nodes", "2", "-procs", "2", exe}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\nstderr:\n%s", code, errb.String())
	}
	if out.String() != "hello, fleet\n" {
		t.Errorf("stdout %q", out.String())
	}
}
