package kernel

import (
	"bytes"
	"errors"
	"testing"

	"asc/internal/binfmt"
	"asc/internal/vm"
)

// corruptAuthString flips one byte of the victim's "/tmp/out"
// authenticated string in process memory (an application-visible store),
// so every open at that site fails its string MAC check.
func corruptAuthString(t *testing.T, exe *binfmt.File, p *Process) {
	t.Helper()
	auth := exe.Section(binfmt.SecAuth)
	if auth == nil {
		t.Fatal("no auth section")
	}
	idx := bytes.Index(auth.Data, []byte("/tmp/out\x00"))
	if idx < 0 {
		t.Fatal("AS not found")
	}
	addr := auth.Addr + uint32(idx)
	old, err := p.Mem.KernelRead(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Mem.UserWrite(addr, []byte{old[0] ^ 0x01}); err != nil {
		t.Fatal(err)
	}
}

// TestDenyModeContinues checks seccomp-style Deny: the violating call
// returns -EPERM, the process survives to a clean exit, and every denial
// is recorded in the ring.
func TestDenyModeContinues(t *testing.T) {
	exe := buildAuthExe(t, cacheLoopSrc)
	k := newKernel(t, WithEnforcement(EnforceDeny))
	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if p.Enforcement != EnforceDeny {
		t.Fatalf("Enforcement = %v, want deny", p.Enforcement)
	}
	corruptAuthString(t, exe, p)
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("deny-mode process killed: %v", p.KilledBy)
	}
	if !p.Exited || p.Code != 0 {
		t.Fatalf("exited=%v code=%d, want clean exit", p.Exited, p.Code)
	}
	// The loop opens 4 times; each open is denied.
	if p.DeniedCount != 4 {
		t.Errorf("DeniedCount = %d, want 4", p.DeniedCount)
	}
	// The denied open must not have created the file.
	if _, err := k.FS.ReadFile("/tmp/out"); err == nil {
		t.Error("denied open still created /tmp/out")
	}
	for _, v := range k.Audit.Entries() {
		if v.Action != ActionDeny || v.Reason != KillBadString {
			t.Errorf("violation %+v, want deny/%s", v, KillBadString)
		}
	}
	if k.Audit.Len() != 4 {
		t.Errorf("ring holds %d, want 4", k.Audit.Len())
	}
}

// TestAuditModeExecutes checks observe-only mode: the violation is
// recorded but the call executes normally.
func TestAuditModeExecutes(t *testing.T) {
	exe := buildAuthExe(t, cacheLoopSrc)
	k := newKernel(t, WithEnforcement(EnforceAudit))
	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	corruptAuthString(t, exe, p)
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("audit-mode process killed: %v", p.KilledBy)
	}
	if p.AuditedCount != 4 {
		t.Errorf("AuditedCount = %d, want 4", p.AuditedCount)
	}
	// Audit mode executes the call: the open succeeds despite the
	// violation, so the file exists. (The path argument register still
	// points at the — corrupted — string bytes.)
	if !k.FS.Exists("/tmp") {
		t.Fatal("fs missing /tmp")
	}
	if v, ok := k.Audit.Last(); !ok || v.Action != ActionAudit {
		t.Errorf("last violation %+v, want audit action", v)
	}
}

// TestDenyUnauthenticatedCall checks Deny mode on the shellcode path: a
// plain SYSCALL from an authenticated binary is refused, not fatal. An
// unauthenticated call carries no record, so the monitor cannot resync
// the control-flow chain through it; later authenticated calls (here
// libc's exit) are denied too and the process runs away until its cycle
// budget expires — the supervisor's problem, not the kernel's.
func TestDenyUnauthenticatedCall(t *testing.T) {
	src := `
        .text
        .global main
main:
        LOAD r0, [sp+0]
        SYSCALL
        MOVI r0, 0
        RET
`
	k := newKernel(t, WithEnforcement(EnforceDeny))
	p, err := k.Spawn(buildAuthExe(t, src), "test")
	if err != nil {
		t.Fatal(err)
	}
	err = k.Run(p, 200_000)
	if !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("Run err = %v, want cycle-limit runaway", err)
	}
	if p.Killed {
		t.Fatalf("killed: %v", p.KilledBy)
	}
	if p.DeniedCount == 0 {
		t.Error("DeniedCount = 0, want > 0")
	}
	ents := k.Audit.Entries()
	if len(ents) == 0 || ents[0].Reason != KillUnauthenticated || ents[0].Action != ActionDeny {
		t.Errorf("first violation %+v, want denied %s", ents, KillUnauthenticated)
	}
}

// TestPerProcessEnforcement runs a kill-default kernel with one process
// switched to Deny: only the overridden process survives its violation.
func TestPerProcessEnforcement(t *testing.T) {
	exe := buildAuthExe(t, cacheLoopSrc)
	k := newKernel(t)

	pd, err := k.Spawn(exe, "deny")
	if err != nil {
		t.Fatal(err)
	}
	pd.Enforcement = EnforceDeny
	corruptAuthString(t, exe, pd)
	if err := k.Run(pd, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if pd.Killed {
		t.Fatalf("deny process killed: %v", pd.KilledBy)
	}

	pk, err := k.Spawn(exe, "kill")
	if err != nil {
		t.Fatal(err)
	}
	corruptAuthString(t, exe, pk)
	if err := k.Run(pk, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !pk.Killed || pk.KilledBy != KillBadString {
		t.Fatalf("kill process: killed=%v by=%q", pk.Killed, pk.KilledBy)
	}
}

// TestAuditRingBounded floods the ring past its capacity and checks the
// drop accounting.
func TestAuditRingBounded(t *testing.T) {
	exe := buildAuthExe(t, cacheLoopSrc)
	k := newKernel(t, WithEnforcement(EnforceDeny), WithAuditCapacity(2))
	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	corruptAuthString(t, exe, p)
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if k.Audit.Len() != 2 {
		t.Errorf("ring holds %d, want capacity 2", k.Audit.Len())
	}
	if k.Audit.Total() != 4 {
		t.Errorf("Total = %d, want 4", k.Audit.Total())
	}
	if k.Audit.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", k.Audit.Dropped())
	}
	ents := k.Audit.Entries()
	if len(ents) != 2 || ents[0].Seq != 2 || ents[1].Seq != 3 {
		t.Errorf("entries out of order: %+v", ents)
	}
}

// TestRingSeqAndString sanity-checks the ring's direct API.
func TestRingSeqAndString(t *testing.T) {
	var r AuditRing
	r.SetCapacity(3)
	for i := 0; i < 5; i++ {
		r.Append(Violation{PID: i, Reason: KillBadCallMAC, Action: ActionKill})
	}
	if r.Len() != 3 || r.Total() != 5 || r.Dropped() != 2 {
		t.Fatalf("len=%d total=%d dropped=%d", r.Len(), r.Total(), r.Dropped())
	}
	ents := r.Entries()
	if ents[0].PID != 2 || ents[2].PID != 4 {
		t.Errorf("entries: %+v", ents)
	}
	if last, ok := r.Last(); !ok || last.PID != 4 {
		t.Errorf("last: %+v ok=%v", last, ok)
	}
	if s := r.String(); s == "" {
		t.Error("empty String()")
	}
}
