package systrace

import (
	"testing"

	"asc/internal/kernel"
	"asc/internal/libc"
	anet "asc/internal/net"
	"asc/internal/sys"
	"asc/internal/vfs"
)

// sockSrc exercises the whole socket family once, with constant
// arguments, so the rendered trace is byte-stable.
const sockSrc = `
        .text
        .global main
main:
        MOVI r1, 1
        MOVI r2, 1
        MOVI r3, 0
        MOVI r4, pairbuf
        CALL socketpair
        MOVI r7, pairbuf
        LOAD r15, [r7+0]
        LOAD r13, [r7+4]
        MOV r1, r15
        MOVI r2, pmsg
        MOVI r3, 8
        MOVI r4, 0
        MOVI r5, 0x02000007     ; packed AF_INET sockaddr, port 7
        CALL sendto
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        MOV r1, r13
        MOVI r2, 4              ; F_SETFL
        MOVI r3, 2048           ; O_NONBLOCK
        CALL fcntl
        MOV r1, r13
        MOVI r2, 3              ; F_GETFL
        MOVI r3, 0
        CALL fcntl
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom           ; drained + nonblocking: EAGAIN
        MOVI r7, pfd            ; poll the drained read end, no blocking
        STORE [r7+0], r13
        MOVI r8, 1              ; POLLIN
        STORE [r7+4], r8
        MOVI r1, pfd
        MOVI r2, 1
        MOVI r3, 0              ; timeout=0: report, do not park
        CALL poll
        MOVI r7, fdset          ; select on the write end: writable
        MOVI r8, 8              ; 1<<3, fd 3
        STORE [r7+0], r8
        MOVI r1, 8
        MOVI r2, 0
        MOVI r3, fdset
        MOVI r4, 0
        MOVI r5, 1              ; non-null timeout: do not park
        CALL select
        MOVI r1, 1
        MOVI r2, 1
        MOVI r3, 0
        CALL socket
        MOV r15, r0
        MOV r1, r15
        MOVI r2, 0x02000009     ; bind to port 9
        CALL bind
        MOV r1, r15
        MOVI r2, 4
        CALL listen
        MOV r1, r15
        MOVI r2, 2
        CALL shutdown
        MOVI r0, 0
        RET
        .rodata
pmsg:   .asciz "payload"
        .bss
pairbuf: .space 8
iobuf:  .space 64
pfd:    .space 8
fdset:  .space 8
`

// TestFormatTraceGolden traces the socket program on a permissive
// networked kernel and pins the decoded rendering: names, fds, lengths,
// and address:port in place of packed words.
func TestFormatTraceGolden(t *testing.T) {
	exe := buildExe(t, sockSrc, libc.Linux)
	fs := vfs.New()
	if err := fs.Mkdir("/tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(fs, nil, kernel.WithMode(kernel.Permissive), kernel.WithNetwork(anet.New()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(exe, "sock")
	if err != nil {
		t.Fatal(err)
	}
	p.DoTrace = true
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("traced run killed: %v", p.KilledBy)
	}
	const golden = `socketpair(domain=1, type=1, proto=0) = 0
sendto(fd=3, len=8, 127.0.0.1:7) = 8
recvfrom(fd=4, cap=64) = 8
fcntl(fd=4, F_SETFL, O_NONBLOCK) = 0
fcntl(fd=4, F_GETFL) = 2048
recvfrom(fd=4, cap=64) = EAGAIN
poll(fds=0x13f8, nfds=1, timeout=0) = 0
select(nfds=8, readfds=0x0, writefds=0x1400, exceptfds=0x0, timeout=0x1) = 1
socket(domain=1, type=1, proto=0) = 5
bind(fd=5, 127.0.0.1:9) = 0
listen(fd=5, backlog=4) = 0
shutdown(fd=5, how=2) = 0
exit(0) = 0
`
	if got := FormatTrace(p.Trace); got != golden {
		t.Errorf("trace rendering diverged:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// mmapSrc exercises the memory-mapping family once with constant
// arguments: map two pages read-write, read-protect the first, unmap.
const mmapSrc = `
        .text
        .global main
main:
        MOVI r1, 0
        MOVI r2, 8192
        MOVI r3, 3
        MOVI r4, 0x22
        MOVI r5, 0
        CALL mmap
        MOV r8, r0
        MOV r1, r8
        MOVI r2, 4096
        MOVI r3, 1
        CALL mprotect
        MOV r1, r8
        MOVI r2, 8192
        CALL munmap
        MOVI r0, 0
        RET
`

// TestFormatTraceGoldenMmap traces the mmap program on a paged kernel
// and pins the decoded rendering: symbolic PROT_* bits and the mapped
// address in hex.
func TestFormatTraceGoldenMmap(t *testing.T) {
	exe := buildExe(t, mmapSrc, libc.Linux)
	fs := vfs.New()
	if err := fs.Mkdir("/tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(fs, nil, kernel.WithMode(kernel.Permissive), kernel.WithPagedMemory(4))
	if err != nil {
		t.Fatal(err)
	}
	p, err := k.Spawn(exe, "mmap")
	if err != nil {
		t.Fatal(err)
	}
	p.DoTrace = true
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("traced run killed: %v", p.KilledBy)
	}
	const golden = `mmap(addr=0x0, len=8192, PROT_READ|PROT_WRITE, flags=0x22, fd=0) = 0x2c1000
mprotect(addr=0x2c1000, len=4096, PROT_READ) = 0
munmap(addr=0x2c1000, len=8192) = 0
exit(0) = 0
`
	if got := FormatTrace(p.Trace); got != golden {
		t.Errorf("trace rendering diverged:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// TestFormatProt pins the symbolic protection rendering, including the
// hex fallback that keeps tampered immediates visible.
func TestFormatProt(t *testing.T) {
	cases := []struct {
		prot uint32
		want string
	}{
		{0, "PROT_NONE"},
		{1, "PROT_READ"},
		{3, "PROT_READ|PROT_WRITE"},
		{7, "PROT_READ|PROT_WRITE|PROT_EXEC"},
		{4, "PROT_EXEC"},
		{0x13, "PROT_READ|PROT_WRITE|0x10"},
	}
	for _, c := range cases {
		if got := formatProt(c.prot); got != c.want {
			t.Errorf("formatProt(%#x) = %q, want %q", c.prot, got, c.want)
		}
	}
}

// TestFormatCallMalformedAddr pins the fallback for sockaddr words that
// do not decode: raw hex, so tampered addresses stay visible.
func TestFormatCallMalformedAddr(t *testing.T) {
	e := kernel.TraceEntry{Num: sys.SysBind}
	e.Args[0], e.Args[1] = 3, 0xdead0007 // family byte 0xde is not AF_INET
	if got, want := FormatCall(e), "bind(fd=3, addr(0xdead0007)) = 0"; got != want {
		t.Errorf("FormatCall = %q, want %q", got, want)
	}
}
