// durable.go extends the campaign to the durable control plane: faults
// against the director's sealed WAL, the persistent checkpoint store,
// and the replicated-takeover path. Each trial runs a 3-victim fleet on
// a durable 3-node cluster with a warm standby attached and checks the
// control-plane contract:
//
//   - crash classes (torn WAL tail, director death mid-migration) lose
//     nothing: the standby takes over by replaying the WAL and every
//     process completes with the single-node reference output — zero
//     cold starts, term exactly 2;
//   - probe classes (record bit flip, stale-log replay) are pure
//     validation attacks on copies of the on-disk images: they must be
//     rejected with their canonical reasons ("wal-tamper",
//     "wal-replay") while the running fleet is never disturbed; and
//   - a stale blob written over the newest store epoch is refused at
//     restore with "epoch-replay" and the fallback chain recovers warm
//     from the older genuine checkpoint.
//
// Durable faults live outside the enforcement path, so each cell runs
// under Kill and Deny and the pair must be identical but for Mode.
package fault

import (
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/ckpt"
	"asc/internal/cluster"
	"asc/internal/core"
	"asc/internal/durable"
	"asc/internal/kernel"
	"asc/internal/workload"
)

// The durable control-plane fault classes.
const (
	// DurableTornTail crashes the director mid-append, leaving a torn
	// final WAL frame; the standby must truncate and take over.
	DurableTornTail Class = "wal-torn-tail"
	// DurableRecordFlip flips one bit inside a sealed WAL record image;
	// validation must refuse the whole log as tampered.
	DurableRecordFlip Class = "wal-record-flip"
	// DurableStaleLog validates an old snapshot of the log against the
	// current anchor — the rolled-back-log replay.
	DurableStaleLog Class = "wal-replay-old-log"
	// DurableStaleEpoch overwrites the newest on-disk store epoch with
	// an older sealed blob, then crashes the owner node.
	DurableStaleEpoch Class = "store-stale-epoch"
	// DurableDirectorCrash kills the director in the worst migration
	// window: checkpoint durable, source fenced, zero bytes moved.
	DurableDirectorCrash Class = "director-crash-mid-migration"
)

// DurableClasses returns the durable fault classes in canonical order.
func DurableClasses() []Class {
	return []Class{DurableTornTail, DurableRecordFlip, DurableStaleLog,
		DurableStaleEpoch, DurableDirectorCrash}
}

// DurableExpectation returns the rejection reasons a class must (and
// may only) produce. Crash classes produce none: their contract is
// recovery.
func DurableExpectation(c Class) []string {
	switch c {
	case DurableRecordFlip:
		return []string{durable.ReasonTamper}
	case DurableStaleLog:
		return []string{durable.ReasonReplay}
	case DurableStaleEpoch:
		return []string{ckpt.ReasonEpoch}
	}
	return nil
}

// durableDir is where each trial's cluster keeps its control plane.
const durableDir = "/director"

// runDurableCell runs every trial of one (class, victim, mode) triple
// on an HA cluster. It reuses ClusterCell: the durable classes check
// the same zero-loss/canonical-rejection contract one layer down.
func runDurableCell(cfg Config, class Class, v *workload.FaultVictim, exe *binfmt.File, vi uint64, prep clusterPrep, mode kernel.Enforcement) (ClusterCell, error) {
	modeName := "kill"
	if mode == kernel.EnforceDeny {
		modeName = "deny"
	}
	cell := ClusterCell{
		Class: string(class), Victim: v.Name, Mode: modeName,
		Trials: cfg.Trials, Reasons: map[string]int{},
	}
	exp := DurableExpectation(class)

	for trial := 0; trial < cfg.Trials; trial++ {
		s := cfg.Seed
		_ = splitmix(&s)
		subseed := s ^ vi<<40 ^ uint64(trial)<<8
		pick := splitmix(&subseed)

		tr := &clusterTrial{}
		h, err := cluster.NewHA(cluster.HAConfig{
			Cluster: cluster.Config{
				Nodes:           clusterFleet,
				Key:             cfg.Key,
				Enforcement:     mode,
				SliceCycles:     prep.slice,
				CheckpointEvery: int64(prep.slice),
				HeartbeatEvery:  1,
				MissThreshold:   3,
				MaxCycles:       cfg.MaxCycles,
				DurableDir:      durableDir,
			},
			Standby: true,
			OnTick:  durableHook(cfg, class, pick, tr),
		})
		if err != nil {
			return cell, err
		}
		reqs := make([]core.RunRequest, clusterFleet)
		for i := range reqs {
			reqs[i] = core.RunRequest{Exe: exe, Name: fmt.Sprintf("v%d", i), Stdin: v.Stdin}
		}
		rep, err := h.Run(reqs)
		if err != nil {
			return cell, fmt.Errorf("fault: durable %s/%s/%s trial %d: %w", class, v.Name, modeName, trial, err)
		}

		badf := func(format string, args ...any) {
			cell.Failures = append(cell.Failures,
				fmt.Sprintf("trial %d: ", trial)+fmt.Sprintf(format, args...))
		}
		for _, msg := range tr.hookErrs {
			badf("%s", msg)
		}
		if tr.fired {
			cell.Fired++
		} else {
			badf("durable fault never fired")
		}
		if rep.DirectorLost {
			badf("director lost despite standby")
		}

		// Zero loss: every process finishes clean with the reference
		// output, and the durable store means no recovery is ever cold.
		recovered := true
		totalFailovers := 0
		for _, pr := range rep.Fleet.Procs {
			cell.Failovers += pr.Failovers
			cell.WarmRestarts += pr.WarmRestarts
			cell.ColdStarts += pr.ColdStarts
			cell.Migrations += pr.Migrations
			cell.ReplayCycles += pr.ReplayCycles
			totalFailovers += pr.Failovers
			switch {
			case pr.Err != nil:
				recovered = false
				badf("%s: %v", pr.Name, pr.Err)
			case pr.Result == nil || pr.Result.Killed || pr.Result.ExitCode != 0:
				recovered = false
				badf("%s: did not exit clean: %+v", pr.Name, pr.Result)
			case pr.Result.Output != prep.ref.Output:
				recovered = false
				badf("%s: output diverged from the single-node run", pr.Name)
			}
			if pr.ColdStarts != 0 {
				badf("%s: %d cold starts with a durable control plane", pr.Name, pr.ColdStarts)
			}
			// The store-stale-epoch rejection surfaces in the fallback
			// chain's per-process rejection map.
			for reason, n := range pr.Rejected {
				for i := 0; i < n; i++ {
					tr.reasons = append(tr.reasons, reason)
				}
			}
		}
		if recovered {
			cell.Recovered++
		}
		if len(tr.reasons) > 0 {
			cell.Rejected++
		}
		for _, reason := range tr.reasons {
			cell.Reasons[reason]++
			ok := false
			for _, want := range exp {
				if reason == want {
					ok = true
				}
			}
			if !ok {
				badf("unexpected rejection reason %q (allowed %v)", reason, exp)
			}
		}

		// Per-class contract.
		switch class {
		case DurableTornTail:
			if rep.Term != 2 {
				badf("term %d after director crash, want 2 (one takeover)", rep.Term)
			}
			if !rep.WALTorn {
				badf("takeover did not report the torn WAL tail")
			}
			if rep.Reattached+rep.Restored != clusterFleet {
				badf("takeover accounted for %d of %d processes",
					rep.Reattached+rep.Restored, clusterFleet)
			}
		case DurableRecordFlip, DurableStaleLog:
			if len(tr.reasons) == 0 {
				badf("probe was not rejected")
			}
			if totalFailovers != 0 {
				badf("probe disturbed the fleet: %d failovers", totalFailovers)
			}
			if rep.Term != 1 {
				badf("probe caused a takeover: term %d", rep.Term)
			}
		case DurableStaleEpoch:
			if len(tr.reasons) == 0 {
				badf("stale store epoch was not rejected")
			}
			if cellWarm(rep) == 0 {
				badf("no warm restart after refusing the stale epoch")
			}
			if len(rep.Fleet.NodesDown) != 1 {
				badf("NodesDown = %v, want exactly the crashed owner", rep.Fleet.NodesDown)
			}
		case DurableDirectorCrash:
			if rep.Term != 2 {
				badf("term %d after director crash, want 2", rep.Term)
			}
			if rep.Restored == 0 {
				badf("mid-migration process was not finished by the takeover")
			}
		}
	}
	if len(cell.Reasons) == 0 {
		cell.Reasons = nil
	}
	return cell, nil
}

// cellWarm sums a report's warm restarts.
func cellWarm(rep *cluster.HAReport) int {
	n := 0
	for _, pr := range rep.Fleet.Procs {
		n += pr.WarmRestarts
	}
	return n
}

// durableHook builds the per-trial fault injector. All decisions are a
// pure function of (class, pick), so trials are deterministic at any
// worker count.
func durableHook(cfg Config, class Class, pick uint64, tr *clusterTrial) func(*cluster.HA, int) {
	fail := func(format string, args ...any) {
		tr.hookErrs = append(tr.hookErrs, fmt.Sprintf(format, args...))
	}
	switch class {
	case DurableTornTail:
		crashAt := 3 + int(pick%3)
		return func(h *cluster.HA, tick int) {
			if tick != crashAt {
				return
			}
			h.CrashPrimary()
			if err := durable.Tear(h.Primary.FS, durableDir, cfg.Key); err != nil {
				fail("tear: %v", err)
				return
			}
			tr.fired = true
		}
	case DurableRecordFlip:
		probeAt := 3 + int(pick%3)
		return func(h *cluster.HA, tick int) {
			if tick != probeAt {
				return
			}
			fs := h.Primary.FS
			logB, err := fs.ReadFile(durable.LogPath(durableDir))
			if err != nil {
				fail("read log: %v", err)
				return
			}
			anchorB, err := fs.ReadFile(durable.AnchorPath(durableDir))
			if err != nil {
				fail("read anchor: %v", err)
				return
			}
			frames := durable.Frames(logB)
			if len(frames) == 0 {
				fail("no sealed frames to flip")
				return
			}
			// Flip one bit inside a frame's body or tag (never the
			// length prefix: that would read as torn, not tampered).
			f := frames[int(pick>>8)%len(frames)]
			off := f.Off + 4 + int(pick>>16)%(f.Len-4)
			flipped := append([]byte(nil), logB...)
			flipped[off] ^= 1 << (pick >> 32 % 8)
			tr.fired = true
			if _, err := durable.ValidateBytes(cfg.Key, flipped, anchorB); err != nil {
				tr.reasons = append(tr.reasons, durable.Reason(err))
			} else {
				fail("bit-flipped WAL image validated")
			}
		}
	case DurableStaleLog:
		snapAt := 2 + int(pick%2)
		probeAt := snapAt + 3
		var snapped []byte
		return func(h *cluster.HA, tick int) {
			fs := h.Primary.FS
			switch tick {
			case snapAt:
				b, err := fs.ReadFile(durable.LogPath(durableDir))
				if err != nil {
					fail("snapshot log: %v", err)
					return
				}
				snapped = append([]byte(nil), b...)
			case probeAt:
				if snapped == nil {
					return
				}
				anchorB, err := fs.ReadFile(durable.AnchorPath(durableDir))
				if err != nil {
					fail("read anchor: %v", err)
					return
				}
				tr.fired = true
				// The old image is internally consistent; only the
				// anchor's freshness can convict it.
				if _, err := durable.ValidateBytes(cfg.Key, snapped, anchorB); err != nil {
					tr.reasons = append(tr.reasons, durable.Reason(err))
				} else {
					fail("stale WAL snapshot validated against a fresh anchor")
				}
			}
		}
	case DurableStaleEpoch:
		tamperAt := 4 + int(pick%2)
		return func(h *cluster.HA, tick int) {
			if tick != tamperAt {
				return
			}
			fs := h.Primary.FS
			sd := durable.StoreDir(durableDir, "v0")
			st, err := durable.OpenStore(fs, sd)
			if err != nil {
				fail("open store: %v", err)
				return
			}
			chain := st.Chain()
			if len(chain) < 2 {
				fail("need two sealed epochs to tamper, have %d", len(chain))
				return
			}
			// The newest epoch's file now holds an older sealed blob; the
			// restore chain must refuse it and fall back warm.
			stale := chain[1].Blob
			if err := fs.WriteFile(durable.EpochPath(sd, chain[0].Epoch), stale, 0o644); err != nil {
				fail("overwrite epoch: %v", err)
				return
			}
			h.Primary.CrashNode(1) // v0's round-robin home
			tr.fired = true
		}
	case DurableDirectorCrash:
		migAt := 2 + int(pick%2)
		dst := cluster.NodeID(2 + (pick>>8)%2) // v0 lives on node 1
		return func(h *cluster.HA, tick int) {
			if tick != migAt {
				return
			}
			opts := cluster.CleanMigrate()
			opts.CrashDirector = true
			if _, err := h.Primary.Migrate("v0", dst, opts); err != nil {
				fail("migrate: %v", err)
				return
			}
			tr.fired = true
		}
	}
	return func(*cluster.HA, int) {}
}

// checkDurableParity mirrors checkClusterParity for the durable cells.
func checkDurableParity(m *Matrix) {
	for i := 0; i+1 < len(m.Durable); i += 2 {
		deny, kill := &m.Durable[i], m.Durable[i+1]
		if deny.Class != kill.Class || deny.Victim != kill.Victim {
			deny.Failures = append(deny.Failures, "unpaired durable cell")
			continue
		}
		a, b := *deny, kill
		a.Mode, b.Mode = "", ""
		a.Failures, b.Failures = nil, nil
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			deny.Failures = append(deny.Failures,
				fmt.Sprintf("mode parity: deny %+v, kill %+v", a, b))
		}
	}
}
