package durable

import (
	"errors"
	"testing"

	"asc/internal/vfs"
)

var testKey = []byte("0123456789abcdef")

func newLog(t *testing.T) (*vfs.FS, *Log) {
	t.Helper()
	fs := vfs.New()
	l, err := Create(fs, "/director", testKey)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return fs, l
}

func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		r := &Record{Tick: uint64(i), Kind: KindBeat}
		if i%3 == 1 {
			r = &Record{Tick: uint64(i), Kind: KindCheckpoint, Name: "p0", Epoch: uint64(i)}
		}
		if err := l.Append(r); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

func TestWALRoundTrip(t *testing.T) {
	fs, l := newLog(t)
	appendN(t, l, 7)
	l2, info, err := Open(fs, "/director", testKey)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(info.Records) != 7 || info.Torn {
		t.Fatalf("Open: %d records torn=%v, want 7 clean", len(info.Records), info.Torn)
	}
	for i, r := range info.Records {
		if r.Seq != uint64(i+1) || r.Term != 1 || r.Tick != uint64(i) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// The reopened handle continues the chain.
	if err := l2.Append(&Record{Tick: 7, Kind: KindBeat}); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if got := l2.Seq(); got != 8 {
		t.Fatalf("Seq after reopen+append = %d, want 8", got)
	}
}

func TestWALRecordCodec(t *testing.T) {
	r := &Record{Seq: 9, Term: 2, Tick: 41, Kind: KindFinish, Name: "p3",
		Node: 2, Node2: 3, Epoch: 5, Cycles: 123456, Code: 7,
		Flags: FlagKilled, Str: "cf-violation", Data: []byte("out\n")}
	b := EncodeRecord(r)
	got, err := DecodeRecord(b)
	if err != nil {
		t.Fatalf("DecodeRecord: %v", err)
	}
	if got.Name != r.Name || got.Kind != r.Kind || got.Cycles != r.Cycles ||
		got.Flags != r.Flags || got.Str != r.Str || string(got.Data) != string(r.Data) {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
	if _, err := DecodeRecord(append(b, 0)); err == nil {
		t.Fatal("trailing byte should fail decode")
	}
	if _, err := DecodeRecord(b[:len(b)-1]); err == nil {
		t.Fatal("truncated body should fail decode")
	}
}

func TestWALTornTailRecovery(t *testing.T) {
	fs, l := newLog(t)
	appendN(t, l, 5)
	if err := Tear(fs, "/director", testKey); err != nil {
		t.Fatalf("Tear: %v", err)
	}
	l2, info, err := Open(fs, "/director", testKey)
	if err != nil {
		t.Fatalf("Open after tear: %v", err)
	}
	if !info.Torn || len(info.Records) != 4 {
		t.Fatalf("recovery: torn=%v records=%d, want torn with 4", info.Torn, len(info.Records))
	}
	// Recovery truncated and the log accepts appends again.
	if err := l2.Append(&Record{Tick: 9, Kind: KindBeat}); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	if _, info2, err := Open(fs, "/director", testKey); err != nil || len(info2.Records) != 5 {
		t.Fatalf("re-open after recovery append: %v, %d records", err, len(info2.Records))
	}
}

func TestWALTamperDetected(t *testing.T) {
	fs, l := newLog(t)
	appendN(t, l, 5)
	logB, _ := fs.ReadFile(LogPath("/director"))
	anchorB, _ := fs.ReadFile(AnchorPath("/director"))
	spans := Frames(logB)
	if len(spans) != 5 {
		t.Fatalf("Frames: %d, want 5", len(spans))
	}
	// Flip one byte inside the middle record's body.
	mut := append([]byte(nil), logB...)
	mut[spans[2].Off+6] ^= 0x40
	_, err := ValidateBytes(testKey, mut, anchorB)
	if !errors.Is(err, ErrTamper) {
		t.Fatalf("flipped record: %v, want ErrTamper", err)
	}
	if Reason(err) != ReasonTamper {
		t.Fatalf("Reason = %q, want %q", Reason(err), ReasonTamper)
	}
	// The pristine image still validates.
	if _, err := ValidateBytes(testKey, logB, anchorB); err != nil {
		t.Fatalf("pristine image: %v", err)
	}
}

func TestWALStaleLogRejected(t *testing.T) {
	fs, l := newLog(t)
	appendN(t, l, 3)
	oldLog, _ := fs.ReadFile(LogPath("/director"))
	appendN(t, l, 3)
	anchorB, _ := fs.ReadFile(AnchorPath("/director"))
	_, err := ValidateBytes(testKey, oldLog, anchorB)
	if !errors.Is(err, ErrReplay) {
		t.Fatalf("stale log vs fresh anchor: %v, want ErrReplay", err)
	}
	if Reason(err) != ReasonReplay {
		t.Fatalf("Reason = %q, want %q", Reason(err), ReasonReplay)
	}
	// A stale anchor (far behind) is a freshness failure too.
	if _, err := ValidateBytes(testKey, oldLog, nil); !errors.Is(err, ErrReplay) {
		t.Fatalf("missing anchor: %v, want ErrReplay", err)
	}
}

func TestWALTermFencing(t *testing.T) {
	fs, l := newLog(t)
	appendN(t, l, 4)
	// A standby opens the same log, bumps the term, and writes the
	// takeover record.
	l2, _, err := Open(fs, "/director", testKey)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	l2.BumpTerm()
	if err := l2.Append(&Record{Tick: 10, Kind: KindTakeover}); err != nil {
		t.Fatalf("takeover append: %v", err)
	}
	if l2.Term() != 2 {
		t.Fatalf("Term = %d, want 2", l2.Term())
	}
	// The deposed handle is fenced out.
	err = l.Append(&Record{Tick: 11, Kind: KindBeat})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed append: %v, want ErrFenced", err)
	}
	// The new handle keeps appending, and validation sees both terms.
	if err := l2.Append(&Record{Tick: 11, Kind: KindBeat}); err != nil {
		t.Fatalf("new-term append: %v", err)
	}
	_, info, err := Open(fs, "/director", testKey)
	if err != nil {
		t.Fatalf("re-open: %v", err)
	}
	if info.LastTerm != 2 || len(info.Records) != 6 {
		t.Fatalf("after takeover: term %d, %d records", info.LastTerm, len(info.Records))
	}
}

func TestWALTailerFollowsAppends(t *testing.T) {
	fs, l := newLog(t)
	tl, err := NewTailer(fs, "/director", testKey)
	if err != nil {
		t.Fatalf("NewTailer: %v", err)
	}
	appendN(t, l, 3)
	recs, err := tl.Tail()
	if err != nil || len(recs) != 3 {
		t.Fatalf("first Tail: %v, %d records", err, len(recs))
	}
	if recs, _ := tl.Tail(); len(recs) != 0 {
		t.Fatalf("idle Tail returned %d records", len(recs))
	}
	appendN(t, l, 2)
	recs, err = tl.Tail()
	if err != nil || len(recs) != 2 {
		t.Fatalf("incremental Tail: %v, %d records", err, len(recs))
	}
	if recs[1].Seq != 5 {
		t.Fatalf("tailer lost sync: last seq %d, want 5", recs[1].Seq)
	}
}
