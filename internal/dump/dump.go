// Package dump renders human-readable listings of SELF binaries:
// sections, symbols, disassembly, and — for authenticated executables —
// the decoded policy objects (auth records, authenticated strings,
// predecessor sets) attached to each call site.
package dump

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"asc/internal/binfmt"
	"asc/internal/cfg"
	"asc/internal/isa"
	"asc/internal/policy"
	"asc/internal/sys"
)

// Options selects what to print.
type Options struct {
	Sections bool // section table
	Symbols  bool // symbol table
	Disasm   bool // instruction listing
	Policies bool // decoded auth records at each authenticated site
}

// All enables everything.
var All = Options{Sections: true, Symbols: true, Disasm: true, Policies: true}

// Dump writes the listing to w.
func Dump(w io.Writer, f *binfmt.File, opts Options) error {
	fmt.Fprintf(w, "SELF %s entry=%#x", kind(f), f.Entry)
	if f.ProgramID != 0 {
		fmt.Fprintf(w, " program-id=%d", f.ProgramID)
	}
	fmt.Fprintln(w)

	if opts.Sections {
		fmt.Fprintln(w, "\nsections:")
		for _, s := range f.Sections {
			fmt.Fprintf(w, "  %-8s %#08x..%#08x %s (%d bytes)\n",
				s.Name, s.Addr, s.End(), flagString(s.Flags), s.Size)
		}
	}
	if opts.Symbols {
		fmt.Fprintln(w, "\nsymbols:")
		syms := append([]binfmt.Symbol(nil), f.Symbols...)
		sort.Slice(syms, func(i, j int) bool {
			ai, _ := addrOf(f, syms[i])
			aj, _ := addrOf(f, syms[j])
			return ai < aj
		})
		for _, s := range syms {
			if s.Kind == binfmt.SymLabel {
				continue
			}
			a, ok := addrOf(f, s)
			if !ok {
				fmt.Fprintf(w, "  %-24s UNDEFINED\n", s.Name)
				continue
			}
			vis := "local "
			if s.Global {
				vis = "global"
			}
			fmt.Fprintf(w, "  %#08x %s %-7s %s\n", a, vis, s.Kind, s.Name)
		}
	}
	if opts.Disasm {
		if err := disasm(w, f, opts.Policies); err != nil {
			return err
		}
	}
	return nil
}

func kind(f *binfmt.File) string {
	switch {
	case f.Authenticated:
		return "authenticated executable"
	case f.Relocatable && f.Entry != 0:
		return "relocatable executable"
	case f.Relocatable:
		return "relocatable object"
	default:
		return "executable"
	}
}

func addrOf(f *binfmt.File, s binfmt.Symbol) (uint32, bool) {
	if !s.Defined() {
		return 0, false
	}
	return f.Sections[s.Section].Addr + s.Value, true
}

func flagString(fl uint8) string {
	out := []byte("---")
	if fl&binfmt.FlagRead != 0 {
		out[0] = 'r'
	}
	if fl&binfmt.FlagWrite != 0 {
		out[1] = 'w'
	}
	if fl&binfmt.FlagExec != 0 {
		out[2] = 'x'
	}
	return string(out)
}

func disasm(w io.Writer, f *binfmt.File, withPolicies bool) error {
	prog, err := cfg.Analyze(f)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\ndisassembly:")
	for _, fun := range prog.Funcs {
		fmt.Fprintf(w, "\n%#08x <%s>:\n", fun.Entry, fun.Name)
		if fun.Incomplete {
			fmt.Fprintf(w, "  ; WARNING: region contains undecodable bytes\n")
		}
		for _, b := range fun.Blocks {
			for _, in := range b.Insns {
				fmt.Fprintf(w, "  %#08x  %s", in.Addr, in.Instr)
				if name, off := f.SymbolAt(in.Instr.Imm); in.Instr.HasImmTarget() && name != "" && off == 0 {
					fmt.Fprintf(w, "    ; -> %s", name)
				}
				fmt.Fprintln(w)
				if withPolicies && in.Instr.IsSyscall() && in.Instr.Op == isa.OpASYSCALL {
					printPolicy(w, f, prog, b)
				}
			}
		}
	}
	for _, g := range prog.Gaps {
		fmt.Fprintf(w, "\n; gap: %#x..%#x in %s (not disassembled)\n", g.Start, g.End, g.Func)
	}
	return nil
}

// printPolicy decodes the auth record referenced by the preamble before
// the site and renders its policy.
func printPolicy(w io.Writer, f *binfmt.File, prog *cfg.Program, b *cfg.Block) {
	site := b.Syscall
	if site == nil {
		return
	}
	text := f.Section(binfmt.SecText)
	auth := f.Section(binfmt.SecAuth)
	if text == nil || auth == nil || site.Addr < text.Addr+isa.InstrSize {
		return
	}
	pre, err := isa.Decode(text.Data[site.Addr-isa.InstrSize-text.Addr:])
	if err != nil || pre.Op != isa.OpMOVI || pre.Rd != isa.R6 {
		return
	}
	if !auth.Contains(pre.Imm) {
		return
	}
	rec, err := policy.DecodeAuthRecord(auth.Data[pre.Imm-auth.Addr:])
	if err != nil {
		fmt.Fprintf(w, "      ; bad auth record: %v\n", err)
		return
	}
	name := "?"
	if site.NumKnown {
		name = sys.Name(site.Num)
	}
	fmt.Fprintf(w, "      ; policy: %s  block=%d  desc=%#x\n", name, rec.BlockID, uint32(rec.Desc))
	for i := 0; i < sys.MaxArgs; i++ {
		if !rec.Desc.ArgConstrained(i) {
			continue
		}
		if rec.Desc.ArgString(i) {
			fmt.Fprintf(w, "      ;   arg%d = authenticated string\n", i+1)
		} else {
			fmt.Fprintf(w, "      ;   arg%d = constant (MACed)\n", i+1)
		}
	}
	if rec.Desc.ControlFlow() && auth.Contains(rec.PredSetPtr) && rec.PredSetPtr >= auth.Addr+policy.ASHeaderSize {
		lenOff := rec.PredSetPtr - policy.ASHeaderSize - auth.Addr
		n := binary.LittleEndian.Uint32(auth.Data[lenOff:])
		if int(rec.PredSetPtr-auth.Addr+n) <= len(auth.Data) {
			ids, err := policy.DecodePredSet(auth.Data[rec.PredSetPtr-auth.Addr : rec.PredSetPtr-auth.Addr+n])
			if err == nil {
				fmt.Fprintf(w, "      ;   predecessors %v\n", ids)
			}
		}
	}
	fmt.Fprintf(w, "      ;   callMAC %x...\n", rec.CallMAC[:4])
}

// Render returns the listing as a string.
func Render(f *binfmt.File, opts Options) (string, error) {
	var b strings.Builder
	if err := Dump(&b, f, opts); err != nil {
		return "", err
	}
	return b.String(), nil
}
