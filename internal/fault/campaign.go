// campaign.go drives the deterministic fault-injection campaign: N
// seeded trials per fault class per victim workload, each trial executed
// under Kill and Deny enforcement across four kernel arms (no cache,
// per-process cache, fleet-shared cache with group-commit batching, and
// demand-paged memory with the authenticated swap device). The
// driver checks the platform's contract — every fault inside the
// MAC-protected surface is detected with an expected reason, faults
// outside it are survived cleanly, and outcomes are identical across
// cache and enforcement configurations — and aggregates the results into
// a JSON-stable matrix.
package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"asc/internal/binfmt"
	"asc/internal/core"
	"asc/internal/kernel"
	anet "asc/internal/net"
	"asc/internal/sched"
	"asc/internal/vfs"
	"asc/internal/vm"
	"asc/internal/workload"
)

// Config parameterizes a campaign.
type Config struct {
	Seed   uint64
	Trials int
	// Key is the MAC key; defaults to a fixed campaign key.
	Key []byte
	// Classes defaults to Classes().
	Classes []Class
	// Victims defaults to workload.FaultVictims().
	Victims []workload.FaultVictim
	// MaxCycles bounds each run; Deny-mode processes whose control-flow
	// chain is unrecoverable run away until this budget expires.
	// Defaults to 4,000,000.
	MaxCycles uint64
	// Workers runs (class, victim) cells on a sched.Pool of this width.
	// Zero or one means serial. Every cell builds its own kernels and
	// fault engine (engines are stateful and not shared), and subseeds
	// depend only on (seed, victim, trial), so the matrix is
	// byte-identical at any worker count.
	Workers int
	// SkipCkpt omits the checkpoint fault classes (torn write, bit flip,
	// epoch replay, wrong-process swap). They run by default.
	SkipCkpt bool
	// SkipCluster omits the cluster fault classes (node crash, torn
	// migration, migration replay, node spoof, heartbeat delay). They
	// run by default.
	SkipCluster bool
	// SkipDurable omits the durable control-plane fault classes (torn
	// WAL tail, WAL record flip, stale-log replay, stale store epoch,
	// director crash mid-migration). They run by default.
	SkipDurable bool
}

// DefaultKey is the campaign MAC key used when Config.Key is nil.
var DefaultKey = []byte("fault-campaign-k")

// Outcome classifies one process run under one configuration.
type Outcome struct {
	Fired    bool   `json:"fired"`
	Detected bool   `json:"detected"`
	Reason   string `json:"reason,omitempty"` // first violation reason
	Result   string `json:"result"`           // clean | killed | denied | runaway | exit:N
}

// Cell aggregates the trials of one (class, victim) pair.
type Cell struct {
	Class    string         `json:"class"`
	Victim   string         `json:"victim"`
	Trials   int            `json:"trials"`
	Fired    int            `json:"fired"`
	Detected int            `json:"detected"`
	Clean    int            `json:"clean"`
	Runaways int            `json:"runaways"` // deny-mode unrecoverable chains
	Reasons  map[string]int `json:"reasons,omitempty"`
	Failures []string       `json:"failures,omitempty"`
}

// RestartCell records the supervised-restart demonstration for one
// victim: a transient record flip kills the first attempt, and the
// supervisor's restart recovers the workload.
type RestartCell struct {
	Victim    string         `json:"victim"`
	Class     string         `json:"class"`
	Attempts  int            `json:"attempts"`
	Restarts  int            `json:"restarts"`
	GaveUp    bool           `json:"gave_up"`
	Recovered bool           `json:"recovered"`
	Causes    map[string]int `json:"causes,omitempty"`
	Failure   string         `json:"failure,omitempty"`
}

// Matrix is the campaign result; its JSON encoding is byte-stable for a
// given Config.
type Matrix struct {
	Seed      uint64        `json:"seed"`
	Trials    int           `json:"trials"`
	MaxCycles uint64        `json:"max_cycles"`
	Cells     []Cell        `json:"cells"`
	Restarts  []RestartCell `json:"restarts"`
	Ckpt      []CkptCell    `json:"ckpt,omitempty"`
	Cluster   []ClusterCell `json:"cluster,omitempty"`
	// Durable reuses ClusterCell: the durable control-plane classes
	// check the same zero-loss/canonical-rejection contract one layer
	// down (WAL, persistent store, takeover).
	Durable []ClusterCell `json:"durable,omitempty"`
}

// Run executes the campaign.
func Run(cfg Config) (*Matrix, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 4
	}
	if cfg.Key == nil {
		cfg.Key = DefaultKey
	}
	if cfg.Classes == nil {
		cfg.Classes = Classes()
	}
	if cfg.Victims == nil {
		cfg.Victims = workload.FaultVictims()
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 4_000_000
	}

	m := &Matrix{Seed: cfg.Seed, Trials: cfg.Trials, MaxCycles: cfg.MaxCycles}

	// Victim binaries are built once, serially, and shared read-only by
	// every cell.
	exes := make([]*binfmt.File, len(cfg.Victims))
	for vi := range cfg.Victims {
		exe, err := cfg.Victims[vi].Build(cfg.Key)
		if err != nil {
			return nil, fmt.Errorf("fault: build victim %s: %w", cfg.Victims[vi].Name, err)
		}
		exes[vi] = exe
	}

	// The checkpoint cells need per-victim measurements (clean cycle
	// counts and swap-donor chains); those are serial and shared
	// read-only by the fan-out below.
	// Socket-surface victims sit out the checkpoint sub-campaign: a
	// process holding live sockets is not checkpointable by design
	// (kernel.Checkpoint fails with ckpt.ErrUnsupported), so they have
	// no chain to tamper with. The paged victim sits out too: its run is
	// one long trapless sweep, and the checkpoint/cluster cadences
	// assume trap-dense victims.
	ckptEligible := func(vi int) bool { return !cfg.Victims[vi].Net && !cfg.Victims[vi].Paged }
	var preps []ckptPrep
	if !cfg.SkipCkpt {
		preps = make([]ckptPrep, len(cfg.Victims))
		for vi := range cfg.Victims {
			if !ckptEligible(vi) {
				continue
			}
			prep, err := prepCkpt(cfg, &cfg.Victims[vi], exes[vi])
			if err != nil {
				return nil, err
			}
			preps[vi] = prep
		}
	}
	// The cluster and durable cells need each victim's single-node
	// reference run — output identity across a failover is the
	// zero-loss criterion. Socket-surface victims sit out for the same
	// reason as above: a process holding live sockets cannot be
	// checkpointed, so it cannot fail over.
	var clusterPreps []clusterPrep
	if !cfg.SkipCluster || !cfg.SkipDurable {
		clusterPreps = make([]clusterPrep, len(cfg.Victims))
		for vi := range cfg.Victims {
			if !ckptEligible(vi) {
				continue
			}
			prep, err := prepCluster(cfg, &cfg.Victims[vi], exes[vi])
			if err != nil {
				return nil, err
			}
			clusterPreps[vi] = prep
		}
	}

	// One task per (victim, class) cell, one restart demonstration per
	// victim, and one (victim, ckpt class, mode) checkpoint cell per
	// combination. Each task owns its kernels, stores, and fault
	// engines, so cells run concurrently when cfg.Workers > 1; subseeds
	// depend only on (seed, victim index, trial), never on scheduling.
	type task struct {
		vi      int
		class   Class // zero for the restart task
		ckpt    bool
		cluster bool
		durable bool
		mode    kernel.Enforcement
	}
	var tasks []task
	for vi := range cfg.Victims {
		for _, class := range cfg.Classes {
			tasks = append(tasks, task{vi: vi, class: class})
		}
		tasks = append(tasks, task{vi: vi})
		if !cfg.SkipCkpt && ckptEligible(vi) {
			for _, class := range CkptClasses() {
				for _, mode := range []kernel.Enforcement{kernel.EnforceKill, kernel.EnforceDeny} {
					tasks = append(tasks, task{vi: vi, class: class, ckpt: true, mode: mode})
				}
			}
		}
		if !cfg.SkipCluster && ckptEligible(vi) {
			for _, class := range ClusterClasses() {
				for _, mode := range []kernel.Enforcement{kernel.EnforceKill, kernel.EnforceDeny} {
					tasks = append(tasks, task{vi: vi, class: class, cluster: true, mode: mode})
				}
			}
		}
		if !cfg.SkipDurable && ckptEligible(vi) {
			for _, class := range DurableClasses() {
				for _, mode := range []kernel.Enforcement{kernel.EnforceKill, kernel.EnforceDeny} {
					tasks = append(tasks, task{vi: vi, class: class, durable: true, mode: mode})
				}
			}
		}
	}
	cells := make([]*Cell, len(tasks))
	restarts := make([]*RestartCell, len(tasks))
	ckptCells := make([]*CkptCell, len(tasks))
	clusterCells := make([]*ClusterCell, len(tasks))
	durableCells := make([]*ClusterCell, len(tasks))
	errs := make([]error, len(tasks))
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	sched.Pool{Workers: workers}.Do(len(tasks), func(i int) {
		tk := tasks[i]
		v := &cfg.Victims[tk.vi]
		switch {
		case tk.durable:
			cell, err := runDurableCell(cfg, tk.class, v, exes[tk.vi], uint64(tk.vi), clusterPreps[tk.vi], tk.mode)
			durableCells[i], errs[i] = &cell, err
		case tk.cluster:
			cell, err := runClusterCell(cfg, tk.class, v, exes[tk.vi], uint64(tk.vi), clusterPreps[tk.vi], tk.mode)
			clusterCells[i], errs[i] = &cell, err
		case tk.ckpt:
			// The swap donor is the next checkpoint-eligible victim's
			// pristine chain — sealed under the same key for a
			// different program.
			di := (tk.vi + 1) % len(cfg.Victims)
			for !ckptEligible(di) {
				di = (di + 1) % len(cfg.Victims)
			}
			donor := preps[di].chain
			cell, err := runCkptCell(cfg, tk.class, v, exes[tk.vi], uint64(tk.vi), preps[tk.vi], donor, tk.mode)
			ckptCells[i], errs[i] = &cell, err
		case tk.class == "":
			rc, err := runRestart(cfg, v, exes[tk.vi], uint64(tk.vi))
			restarts[i], errs[i] = &rc, err
		default:
			cell, err := runCell(cfg, tk.class, v, exes[tk.vi], uint64(tk.vi))
			cells[i], errs[i] = &cell, err
		}
	})
	for i, err := range errs {
		if err != nil {
			return nil, err
		}
		switch {
		case cells[i] != nil:
			m.Cells = append(m.Cells, *cells[i])
		case ckptCells[i] != nil:
			m.Ckpt = append(m.Ckpt, *ckptCells[i])
		case clusterCells[i] != nil:
			m.Cluster = append(m.Cluster, *clusterCells[i])
		case durableCells[i] != nil:
			m.Durable = append(m.Durable, *durableCells[i])
		default:
			m.Restarts = append(m.Restarts, *restarts[i])
		}
	}
	sort.SliceStable(m.Cells, func(i, j int) bool {
		if m.Cells[i].Class != m.Cells[j].Class {
			return m.Cells[i].Class < m.Cells[j].Class
		}
		return m.Cells[i].Victim < m.Cells[j].Victim
	})
	sort.SliceStable(m.Restarts, func(i, j int) bool {
		return m.Restarts[i].Victim < m.Restarts[j].Victim
	})
	sort.SliceStable(m.Ckpt, func(i, j int) bool {
		a, b := m.Ckpt[i], m.Ckpt[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		return a.Mode < b.Mode
	})
	sort.SliceStable(m.Cluster, func(i, j int) bool {
		a, b := m.Cluster[i], m.Cluster[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		return a.Mode < b.Mode
	})
	sort.SliceStable(m.Durable, func(i, j int) bool {
		a, b := m.Durable[i], m.Durable[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		return a.Mode < b.Mode
	})
	// Mode parity: checkpoint, cluster, and durable faults never touch
	// the enforcement path, so each Deny cell must mirror its Kill
	// sibling exactly.
	checkCkptParity(m)
	checkClusterParity(m)
	checkDurableParity(m)
	return m, nil
}

// checkCkptParity compares each (class, victim) pair's Deny cell against
// its Kill sibling; any divergence is recorded as a failure on the Deny
// cell. With the cells sorted (class, victim, mode), siblings are
// adjacent with "deny" first.
func checkCkptParity(m *Matrix) {
	for i := 0; i+1 < len(m.Ckpt); i += 2 {
		deny, kill := &m.Ckpt[i], m.Ckpt[i+1]
		if deny.Class != kill.Class || deny.Victim != kill.Victim {
			deny.Failures = append(deny.Failures, "unpaired checkpoint cell")
			continue
		}
		a, b := *deny, kill
		a.Mode, b.Mode = "", ""
		a.Failures, b.Failures = nil, nil
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			deny.Failures = append(deny.Failures,
				fmt.Sprintf("mode parity: deny %+v, kill %+v", a, b))
		}
	}
}

// runRestart runs one victim under the restart supervisor with a
// transient record flip: the fault fires once, the killed attempt is
// restarted, and the fresh process (the flip is spent) runs clean.
func runRestart(cfg Config, v *workload.FaultVictim, exe *binfmt.File, vi uint64) (RestartCell, error) {
	s := cfg.Seed
	_ = splitmix(&s)
	subseed := s ^ vi<<40 ^ 1<<63 // distinct from every trial subseed
	eng := NewEngine(FlipRecord, subseed)
	kopts := []kernel.Option{kernel.WithInjector(eng)}
	if v.Net {
		kopts = append(kopts, kernel.WithNetwork(anet.New()))
	}
	sys, err := core.NewSystem(core.Config{
		Key:           cfg.Key,
		KernelOptions: kopts,
	})
	if err != nil {
		return RestartCell{}, err
	}
	stats, err := sys.Supervise(exe, v.Name, v.Stdin, core.SuperviseConfig{
		MaxRestarts: 3,
		BackoffBase: 100,
		MaxCycles:   cfg.MaxCycles,
	})
	if err != nil {
		return RestartCell{}, fmt.Errorf("fault: supervise %s: %w", v.Name, err)
	}
	rc := RestartCell{
		Victim:    v.Name,
		Class:     string(FlipRecord),
		Attempts:  stats.Attempts,
		Restarts:  stats.Restarts,
		GaveUp:    stats.GaveUp,
		Recovered: !stats.GaveUp && stats.Restarts > 0,
		Causes:    stats.Causes,
	}
	switch {
	case !eng.Fired():
		rc.Failure = "fault never fired"
	case stats.GaveUp:
		rc.Failure = "supervisor gave up on a transient fault"
	case stats.Restarts != 1:
		rc.Failure = fmt.Sprintf("%d restarts for one transient fault, want 1", stats.Restarts)
	}
	return rc, nil
}

// runCell runs every trial of one (class, victim) pair.
func runCell(cfg Config, class Class, v *workload.FaultVictim, exe *binfmt.File, vi uint64) (Cell, error) {
	cell := Cell{
		Class: string(class), Victim: v.Name, Trials: cfg.Trials,
		Reasons: map[string]int{},
	}
	exp := Expectation(class)
	for trial := 0; trial < cfg.Trials; trial++ {
		s := cfg.Seed
		_ = splitmix(&s)
		subseed := s ^ vi<<40 ^ uint64(trial)<<8
		var outs [2 * cacheArms]Outcome
		i := 0
		for _, mode := range []kernel.Enforcement{kernel.EnforceKill, kernel.EnforceDeny} {
			for cache := 0; cache < cacheArms; cache++ {
				out, err := runOne(cfg, class, exe, v.Stdin, subseed, mode, cache, v.Net)
				if err != nil {
					return cell, fmt.Errorf("fault: %s/%s trial %d: %w", class, v.Name, trial, err)
				}
				outs[i] = out
				i++
			}
		}
		cell.note(checkTrial(exp, outs, trial))

		// Aggregate the Kill/cache-off run (the canonical configuration).
		k := outs[0]
		if k.Fired {
			cell.Fired++
		}
		if k.Detected {
			cell.Detected++
			cell.Reasons[k.Reason]++
		}
		if k.Result == "clean" {
			cell.Clean++
		}
		for _, o := range outs[cacheArms:] { // the Deny runs
			if o.Result == "runaway" {
				cell.Runaways++
			}
		}
	}
	if len(cell.Reasons) == 0 {
		cell.Reasons = nil
	}
	return cell, nil
}

// note appends non-empty failure messages.
func (c *Cell) note(msgs []string) {
	c.Failures = append(c.Failures, msgs...)
}

// checkTrial validates one trial's eight outcomes against the class
// contract and the cross-configuration parity requirements.
func checkTrial(exp Expect, outs [2 * cacheArms]Outcome, trial int) []string {
	var fails []string
	badf := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf("trial %d: ", trial)+fmt.Sprintf(format, args...))
	}
	names := [2 * cacheArms]string{
		"kill", "kill+cache", "kill+fleet", "kill+paged",
		"deny", "deny+cache", "deny+fleet", "deny+paged",
	}

	// Parity: the fault either fires in every configuration or in none,
	// and every cache arm must agree exactly within each mode.
	for i := 1; i < len(outs); i++ {
		if outs[i].Fired != outs[0].Fired {
			badf("fired mismatch: %s=%v, kill=%v", names[i], outs[i].Fired, outs[0].Fired)
		}
	}
	for i := 1; i < cacheArms; i++ {
		if outs[i] != outs[0] {
			badf("cache parity (%s): %+v vs %+v", names[i], outs[i], outs[0])
		}
		if outs[cacheArms+i] != outs[cacheArms] {
			badf("cache parity (%s): %+v vs %+v", names[cacheArms+i], outs[cacheArms+i], outs[cacheArms])
		}
	}
	// Kill and Deny must agree on detection and on the first reason.
	if outs[cacheArms].Detected != outs[0].Detected {
		badf("mode parity: deny detected=%v, kill detected=%v", outs[cacheArms].Detected, outs[0].Detected)
	}
	if outs[0].Detected && outs[cacheArms].Detected && outs[cacheArms].Reason != outs[0].Reason {
		badf("mode parity: deny reason %q, kill reason %q", outs[cacheArms].Reason, outs[0].Reason)
	}

	for i, o := range outs {
		switch {
		case !o.Fired:
			// The fault never triggered (no eligible site): the victim
			// must run to a clean exit.
			if o.Result != "clean" {
				badf("%s: unfired run ended %q, want clean", names[i], o.Result)
			}
		case !exp.Detected:
			// Outside the protection boundary: clean survival required.
			if o.Detected || o.Result != "clean" {
				badf("%s: out-of-boundary fault not survived: %+v", names[i], o)
			}
		default:
			if !o.Detected {
				badf("%s: fault not detected: %+v", names[i], o)
			} else if !exp.ReasonAllowed(kernel.KillReason(o.Reason)) {
				badf("%s: unexpected reason %q", names[i], o.Reason)
			}
			if i < cacheArms && o.Detected && o.Result != "killed" {
				badf("%s: detected but result %q, want killed", names[i], o.Result)
			}
			if i >= cacheArms && o.Result == "killed" {
				badf("%s: deny-mode process was killed", names[i])
			}
		}
	}
	return fails
}

// The kernel arms every (class, victim, trial, mode) cell runs: the
// detection contract may not depend on which fast path is active, and
// turning on demand paging may not change any existing class's outcome.
const (
	armCacheOff = iota
	armCachePerProc
	armCacheFleet
	armPaged
	cacheArms
)

// pagedBudget is the resident-page budget of paged campaign arms: the
// minimum, so the paged victim's working set overflows immediately.
const pagedBudget = 4

// classNeedsPaging: the swap classes inject on the eviction path, which
// only exists on a paged kernel, so they run paged in every arm (the
// cross-arm parity check then covers cache interactions). Every other
// class exercises paging only in the dedicated paged arm.
func classNeedsPaging(class Class, cache int) bool {
	return cache == armPaged || class == SwapFlip || class == SwapReplay
}

// runOne executes one victim run under one configuration. withNet
// attaches a fresh virtual network (socket-surface victims move real
// bytes; the network is per-run, so runs stay independent).
func runOne(cfg Config, class Class, exe *binfmt.File, stdin string, subseed uint64, mode kernel.Enforcement, cache int, withNet bool) (Outcome, error) {
	fs := vfs.New()
	for _, d := range []string{"/bin", "/etc", "/tmp", "/data"} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			return Outcome{}, err
		}
	}
	eng := NewEngine(class, subseed)
	// The campaign probes the FIRST violation, so the audit ring must
	// never wrap: every violating trap costs at least the trap cycles,
	// which bounds how many violations fit in the cycle budget. (The
	// default 1024-entry ring can wrap differently across cache
	// configurations — cache hits are cheaper, so the cached arm packs
	// more denied loop iterations into the same budget.)
	ringCap := int(cfg.MaxCycles/kernel.DefaultCosts.Trap) + 16
	opts := []kernel.Option{
		kernel.WithEnforcement(mode),
		kernel.WithInjector(eng),
		kernel.WithAuditCapacity(ringCap),
	}
	switch cache {
	case armCachePerProc:
		opts = append(opts, kernel.WithCacheMode(kernel.CachePerProcess))
	case armCacheFleet:
		opts = append(opts, kernel.WithVerifyCache(), kernel.WithBatchVerify(8))
	}
	if classNeedsPaging(class, cache) {
		opts = append(opts, kernel.WithPagedMemory(pagedBudget))
	}
	if withNet {
		opts = append(opts, kernel.WithNetwork(anet.New()))
	}
	k, err := kernel.New(fs, cfg.Key, opts...)
	if err != nil {
		return Outcome{}, err
	}
	p, err := k.Spawn(exe, "victim")
	if err != nil {
		return Outcome{}, err
	}
	p.Stdin = []byte(stdin)
	runErr := k.Run(p, cfg.MaxCycles)

	out := Outcome{Fired: eng.Fired()}
	if first, ok := firstViolation(k); ok {
		out.Detected = true
		out.Reason = string(first.Reason)
	}
	switch {
	case p.Killed:
		out.Result = "killed"
	case errors.Is(runErr, vm.ErrCycleLimit):
		out.Result = "runaway"
	case runErr != nil:
		return Outcome{}, runErr
	case p.Exited && p.Code == 0 && !out.Detected:
		out.Result = "clean"
	case p.Exited && p.Code == 0:
		out.Result = "denied"
	default:
		out.Result = fmt.Sprintf("exit:%d", p.Code)
	}
	return out, nil
}

// firstViolation returns the oldest violation in the kernel's ring.
func firstViolation(k *kernel.Kernel) (kernel.Violation, bool) {
	ents := k.Audit.Entries()
	if len(ents) == 0 {
		return kernel.Violation{}, false
	}
	return ents[0], true
}

// JSON renders the matrix with stable formatting.
func (m *Matrix) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// Failures returns every accumulated contract violation.
func (m *Matrix) Failures() []string {
	var all []string
	for _, c := range m.Cells {
		for _, f := range c.Failures {
			all = append(all, fmt.Sprintf("%s/%s: %s", c.Class, c.Victim, f))
		}
	}
	for _, r := range m.Restarts {
		if r.Failure != "" {
			all = append(all, fmt.Sprintf("restart/%s: %s", r.Victim, r.Failure))
		}
	}
	for _, c := range m.Ckpt {
		for _, f := range c.Failures {
			all = append(all, fmt.Sprintf("%s/%s/%s: %s", c.Class, c.Victim, c.Mode, f))
		}
	}
	for _, c := range m.Cluster {
		for _, f := range c.Failures {
			all = append(all, fmt.Sprintf("%s/%s/%s: %s", c.Class, c.Victim, c.Mode, f))
		}
	}
	for _, c := range m.Durable {
		for _, f := range c.Failures {
			all = append(all, fmt.Sprintf("%s/%s/%s: %s", c.Class, c.Victim, c.Mode, f))
		}
	}
	return all
}

// Render formats the matrix as an aligned text table.
func (m *Matrix) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign: seed=%d trials=%d\n", m.Seed, m.Trials)
	fmt.Fprintf(&b, "%-18s %-8s %6s %6s %9s %6s %9s  %s\n",
		"class", "victim", "trials", "fired", "detected", "clean", "runaways", "reasons")
	for _, c := range m.Cells {
		reasons := make([]string, 0, len(c.Reasons))
		for r, n := range c.Reasons {
			reasons = append(reasons, fmt.Sprintf("%s×%d", r, n))
		}
		sort.Strings(reasons)
		status := strings.Join(reasons, ", ")
		if len(c.Failures) > 0 {
			status = fmt.Sprintf("FAILURES=%d %s", len(c.Failures), status)
		}
		fmt.Fprintf(&b, "%-18s %-8s %6d %6d %9d %6d %9d  %s\n",
			c.Class, c.Victim, c.Trials, c.Fired, c.Detected, c.Clean, c.Runaways, status)
	}
	for _, r := range m.Restarts {
		verdict := "recovered"
		if !r.Recovered {
			verdict = "NOT recovered"
		}
		if r.Failure != "" {
			verdict += " (FAILURE: " + r.Failure + ")"
		}
		fmt.Fprintf(&b, "supervised restart %-8s transient %s: %d attempts, %d restarts, %s\n",
			r.Victim, r.Class, r.Attempts, r.Restarts, verdict)
	}
	if len(m.Ckpt) > 0 {
		fmt.Fprintf(&b, "checkpoint faults:\n")
		fmt.Fprintf(&b, "%-18s %-8s %-5s %6s %6s %9s %5s %10s %7s  %s\n",
			"class", "victim", "mode", "trials", "fired", "rejected", "warm", "recovered", "replay", "reasons")
		for _, c := range m.Ckpt {
			reasons := make([]string, 0, len(c.Reasons))
			for r, n := range c.Reasons {
				reasons = append(reasons, fmt.Sprintf("%s×%d", r, n))
			}
			sort.Strings(reasons)
			status := strings.Join(reasons, ", ")
			if len(c.Failures) > 0 {
				status = fmt.Sprintf("FAILURES=%d %s", len(c.Failures), status)
			}
			fmt.Fprintf(&b, "%-18s %-8s %-5s %6d %6d %9d %5d %10d %7d  %s\n",
				c.Class, c.Victim, c.Mode, c.Trials, c.Fired, c.Rejected,
				c.WarmRestarts, c.Recovered, c.ReplayCycles, status)
		}
	}
	if len(m.Cluster) > 0 {
		fmt.Fprintf(&b, "cluster faults:\n")
		fmt.Fprintf(&b, "%-24s %-8s %-5s %6s %6s %9s %9s %5s %10s  %s\n",
			"class", "victim", "mode", "trials", "fired", "rejected", "failovers", "warm", "recovered", "reasons")
		for _, c := range m.Cluster {
			reasons := make([]string, 0, len(c.Reasons))
			for r, n := range c.Reasons {
				reasons = append(reasons, fmt.Sprintf("%s×%d", r, n))
			}
			sort.Strings(reasons)
			status := strings.Join(reasons, ", ")
			if len(c.Failures) > 0 {
				status = fmt.Sprintf("FAILURES=%d %s", len(c.Failures), status)
			}
			fmt.Fprintf(&b, "%-24s %-8s %-5s %6d %6d %9d %9d %5d %10d  %s\n",
				c.Class, c.Victim, c.Mode, c.Trials, c.Fired, c.Rejected,
				c.Failovers, c.WarmRestarts, c.Recovered, status)
		}
	}
	if len(m.Durable) > 0 {
		fmt.Fprintf(&b, "durable control-plane faults:\n")
		fmt.Fprintf(&b, "%-28s %-8s %-5s %6s %6s %9s %9s %5s %10s  %s\n",
			"class", "victim", "mode", "trials", "fired", "rejected", "failovers", "warm", "recovered", "reasons")
		for _, c := range m.Durable {
			reasons := make([]string, 0, len(c.Reasons))
			for r, n := range c.Reasons {
				reasons = append(reasons, fmt.Sprintf("%s×%d", r, n))
			}
			sort.Strings(reasons)
			status := strings.Join(reasons, ", ")
			if len(c.Failures) > 0 {
				status = fmt.Sprintf("FAILURES=%d %s", len(c.Failures), status)
			}
			fmt.Fprintf(&b, "%-28s %-8s %-5s %6d %6d %9d %9d %5d %10d  %s\n",
				c.Class, c.Victim, c.Mode, c.Trials, c.Fired, c.Rejected,
				c.Failovers, c.WarmRestarts, c.Recovered, status)
		}
	}
	return b.String()
}
