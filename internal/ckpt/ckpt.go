// Package ckpt implements sealed process checkpoints: a deterministic
// serialization of a running guest's state — VM registers, memory
// segments with their store-generation counters, the fd/offset table,
// and the in-kernel memory-checker nonce — authenticated with a CMAC
// under the platform's policy MAC key.
//
// The trust argument mirrors the paper's online memory checker: state
// that leaves the kernel's hands (here, a checkpoint at rest) is never
// trusted on the way back in. The seal covers every serialized byte and
// binds two extra facts:
//
//   - a monotonically increasing checkpoint *epoch*, chosen and
//     remembered by the restorer (never read back from the blob), so a
//     stale checkpoint replayed into a newer slot fails the epoch check
//     even though its seal is genuine; and
//   - a *program tag* (CMAC over the installed executable's serialized
//     bytes), so a sealed checkpoint of process A cannot be restored
//     into a process running program B.
//
// A bit flip or torn write anywhere in the blob breaks the seal; a
// replay breaks the epoch; a cross-process swap breaks the program tag.
// Restore therefore either reproduces exactly the sealed state or fails
// with a classified error — it never executes unverified state.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"asc/internal/mac"
)

// Blob layout: header (magic, version, epoch), the encoded State, and a
// trailing CMAC over everything before it.
const (
	magic      = "ASCK"
	version    = 2 // v2: paged-memory section (page table, swap residue)
	headerSize = 4 + 4 + 8
	minBlob    = headerSize + mac.Size
)

// Domain-separation prefixes for the two MAC uses, so a checkpoint seal
// can never be confused with a program tag (or any policy MAC).
var (
	sealPrefix = []byte("asc/ckpt/seal/v1\x00")
	progPrefix = []byte("asc/ckpt/prog/v1\x00")
)

// Restore failure classes. Checkpoint consumers classify with Reason.
var (
	// ErrTruncated: the blob is too short to hold even a sealed header —
	// a torn write lost the tail.
	ErrTruncated = errors.New("ckpt: checkpoint truncated")
	// ErrSeal: the CMAC over the blob does not verify (bit flip, torn
	// write, or forgery).
	ErrSeal = errors.New("ckpt: seal mismatch")
	// ErrMalformed: the seal verified but the payload does not decode —
	// an encoder/decoder version skew, never an attack (a sealed blob is
	// authentic by construction).
	ErrMalformed = errors.New("ckpt: malformed checkpoint")
	// ErrEpoch: the sealed epoch is not the one the restorer expected —
	// a stale checkpoint replayed into a newer slot.
	ErrEpoch = errors.New("ckpt: epoch mismatch (stale or replayed checkpoint)")
	// ErrProgram: the sealed program tag belongs to a different
	// executable — a cross-process checkpoint swap.
	ErrProgram = errors.New("ckpt: checkpoint sealed for a different program")
	// ErrState: the blob verified and decoded but the restored state
	// failed its own re-verification (CF-state MAC, capability set, or
	// an environment mismatch such as a missing file).
	ErrState = errors.New("ckpt: restored state failed re-verification")
	// ErrUnsupported: the live process holds state the checkpoint format
	// cannot capture (open pipes or sockets).
	ErrUnsupported = errors.New("ckpt: process state not checkpointable")
)

// Canonical reason strings for rejection statistics.
const (
	ReasonTruncated = "truncated"
	ReasonSeal      = "seal-mismatch"
	ReasonMalformed = "malformed"
	ReasonEpoch     = "epoch-replay"
	ReasonProgram   = "program-mismatch"
	ReasonState     = "state-mismatch"
	ReasonOther     = "other"
)

// Reason classifies a restore error into a canonical string ("" for nil).
func Reason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrTruncated):
		return ReasonTruncated
	case errors.Is(err, ErrSeal):
		return ReasonSeal
	case errors.Is(err, ErrMalformed):
		return ReasonMalformed
	case errors.Is(err, ErrEpoch):
		return ReasonEpoch
	case errors.Is(err, ErrProgram):
		return ReasonProgram
	case errors.Is(err, ErrState):
		return ReasonState
	case errors.Is(err, ErrNode):
		return ReasonNode
	default:
		return ReasonOther
	}
}

// SegState is one memory segment: its protection range, its
// store-generation counter, and its contents.
type SegState struct {
	Name  string
	Start uint32
	End   uint32 // exclusive
	Perms uint8
	Gen   uint64
	Data  []byte // End-Start bytes
}

// FDState is one open descriptor. Only disk files and console streams
// are checkpointable; pipes and sockets make Checkpoint fail with
// ErrUnsupported.
type FDState struct {
	Slot   uint32
	Kind   uint32 // kernel fdKind value
	Path   string // resolved path (file descriptors only)
	Offset uint32
}

// SigState is one installed signal handler.
type SigState struct {
	Num     uint32
	Handler uint32
}

// State is the complete checkpointable state of one process, quiesced at
// an instruction boundary (a superset of the trap boundary: the kernel
// updates CF state and counter atomically within a single trap, so any
// instruction boundary sees them consistent).
type State struct {
	Epoch   uint64
	ProgTag mac.Tag

	Name          string
	Authenticated bool
	Enforcement   uint32

	// CPU.
	Regs   []uint32
	PC     uint32
	Cycles uint64
	Halted bool

	// Address space.
	MemBase uint32
	MemSize uint32
	Brk     uint32
	Segs    []SegState

	// Verification state: the memory-checker nonce and the capability-
	// tracker nonce (the MACed values themselves live in segment data).
	Counter        uint64
	FDTrack        bool
	FDTrackCounter uint64

	// Process environment.
	Cwd        string
	Umask      uint32
	Stdin      []byte
	StdinPos   uint32
	Stdout     []byte
	NumFDSlots uint32
	FDs        []FDState
	Sigs       []SigState

	// Statistics (restored so supervision accounting stays continuous).
	SyscallCount       uint64
	VerifyCount        uint64
	VerifyAESBlocks    uint64
	DeniedCount        uint64
	AuditedCount       uint64
	CacheHits          uint64
	CacheMisses        uint64
	CacheInvalidations uint64

	// Paged virtual memory (format v2). Paged records whether the process
	// ran on a demand-paged kernel; the remaining fields describe its
	// mmap-arena page table and the swap residue of evicted pages. The
	// arena's *resident* contents travel inside the ordinary segment
	// capture; SwapPages carries the evicted pages' plaintext (verified
	// against their sealed frames at capture time) so a restore can
	// re-seal them under the restored process's identity.
	Paged     bool
	PageBase  uint32
	PageHand  uint32
	PageFlags []byte   // one vm.PageFlags byte per arena page
	PageGens  []uint64 // per-page swap generation, parallel to PageFlags
	SwapPages []SwapPageState
}

// SwapPageState is one evicted page's verified plaintext.
type SwapPageState struct {
	Index uint32
	Data  []byte
}

// ProgramTag computes the program-binding tag over an executable's
// deterministic serialization.
func ProgramTag(k *mac.Keyed, exeBytes []byte) mac.Tag {
	msg := make([]byte, 0, len(progPrefix)+len(exeBytes))
	msg = append(msg, progPrefix...)
	msg = append(msg, exeBytes...)
	tag, _ := k.Sum(msg)
	return tag
}

// Seal serializes the state and appends the CMAC seal.
func Seal(k *mac.Keyed, s *State) []byte {
	b := encode(s)
	msg := make([]byte, 0, len(sealPrefix)+len(b))
	msg = append(msg, sealPrefix...)
	msg = append(msg, b...)
	tag, _ := k.Sum(msg)
	return append(b, tag[:]...)
}

// Open verifies the seal and decodes the state. The checks run in trust
// order: length, then seal, then (only over authenticated bytes) the
// payload decode.
func Open(k *mac.Keyed, blob []byte) (*State, error) {
	if len(blob) < minBlob {
		return nil, fmt.Errorf("%w (%d bytes)", ErrTruncated, len(blob))
	}
	body := blob[:len(blob)-mac.Size]
	var tag mac.Tag
	copy(tag[:], blob[len(blob)-mac.Size:])
	msg := make([]byte, 0, len(sealPrefix)+len(body))
	msg = append(msg, sealPrefix...)
	msg = append(msg, body...)
	if ok, _ := k.Verify(msg, tag); !ok {
		return nil, ErrSeal
	}
	return DecodeState(body)
}

// SealedEpoch reads the epoch from a blob's header without verifying the
// seal. It exists for tooling (picking a restore slot); trust decisions
// must go through Open plus the caller's own epoch expectation.
func SealedEpoch(blob []byte) (uint64, error) {
	if len(blob) < headerSize {
		return 0, fmt.Errorf("%w (%d bytes)", ErrTruncated, len(blob))
	}
	if string(blob[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	if v := binary.LittleEndian.Uint32(blob[4:]); v != version {
		return 0, fmt.Errorf("%w: version %d", ErrMalformed, v)
	}
	return binary.LittleEndian.Uint64(blob[8:]), nil
}

// encode serializes the header and payload (everything the seal covers).
func encode(s *State) []byte {
	var e enc
	e.raw(append([]byte(nil), magic...))
	e.u32(version)
	e.u64(s.Epoch)
	e.raw(s.ProgTag[:])

	e.str(s.Name)
	e.bool(s.Authenticated)
	e.u32(s.Enforcement)

	e.u32(uint32(len(s.Regs)))
	for _, r := range s.Regs {
		e.u32(r)
	}
	e.u32(s.PC)
	e.u64(s.Cycles)
	e.bool(s.Halted)

	e.u32(s.MemBase)
	e.u32(s.MemSize)
	e.u32(s.Brk)
	e.u32(uint32(len(s.Segs)))
	for i := range s.Segs {
		sg := &s.Segs[i]
		e.str(sg.Name)
		e.u32(sg.Start)
		e.u32(sg.End)
		e.u8(sg.Perms)
		e.u64(sg.Gen)
		e.bytes(sg.Data)
	}

	e.u64(s.Counter)
	e.bool(s.FDTrack)
	e.u64(s.FDTrackCounter)

	e.str(s.Cwd)
	e.u32(s.Umask)
	e.bytes(s.Stdin)
	e.u32(s.StdinPos)
	e.bytes(s.Stdout)
	e.u32(s.NumFDSlots)
	e.u32(uint32(len(s.FDs)))
	for i := range s.FDs {
		fd := &s.FDs[i]
		e.u32(fd.Slot)
		e.u32(fd.Kind)
		e.str(fd.Path)
		e.u32(fd.Offset)
	}
	e.u32(uint32(len(s.Sigs)))
	for _, sg := range s.Sigs {
		e.u32(sg.Num)
		e.u32(sg.Handler)
	}

	for _, v := range []uint64{
		s.SyscallCount, s.VerifyCount, s.VerifyAESBlocks,
		s.DeniedCount, s.AuditedCount,
		s.CacheHits, s.CacheMisses, s.CacheInvalidations,
	} {
		e.u64(v)
	}

	e.bool(s.Paged)
	if s.Paged {
		e.u32(s.PageBase)
		e.u32(s.PageHand)
		e.bytes(s.PageFlags)
		e.u32(uint32(len(s.PageGens)))
		for _, g := range s.PageGens {
			e.u64(g)
		}
		e.u32(uint32(len(s.SwapPages)))
		for i := range s.SwapPages {
			e.u32(s.SwapPages[i].Index)
			e.bytes(s.SwapPages[i].Data)
		}
	}
	return e.b
}

// DecodeState parses an *unsealed* header+payload (a blob without its
// trailing MAC). It performs no authentication — callers must verify the
// seal first (Open does) — but is safe on arbitrary input: every length
// is bounds-checked against the remaining bytes before any allocation,
// so the fuzzer can feed it garbage without panics or memory blowups.
func DecodeState(b []byte) (*State, error) {
	d := dec{b: b}
	var s State
	if string(d.raw(4)) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrMalformed)
	}
	if v := d.u32(); v != version && !d.fail {
		return nil, fmt.Errorf("%w: version %d", ErrMalformed, v)
	}
	s.Epoch = d.u64()
	copy(s.ProgTag[:], d.raw(mac.Size))

	s.Name = d.str()
	s.Authenticated = d.bool()
	s.Enforcement = d.u32()

	nregs := d.count(4)
	s.Regs = make([]uint32, 0, nregs)
	for i := 0; i < nregs; i++ {
		s.Regs = append(s.Regs, d.u32())
	}
	s.PC = d.u32()
	s.Cycles = d.u64()
	s.Halted = d.bool()

	s.MemBase = d.u32()
	s.MemSize = d.u32()
	s.Brk = d.u32()
	nsegs := d.count(22)
	for i := 0; i < nsegs && !d.fail; i++ {
		var sg SegState
		sg.Name = d.str()
		sg.Start = d.u32()
		sg.End = d.u32()
		sg.Perms = d.u8()
		sg.Gen = d.u64()
		sg.Data = d.bytes()
		s.Segs = append(s.Segs, sg)
	}

	s.Counter = d.u64()
	s.FDTrack = d.bool()
	s.FDTrackCounter = d.u64()

	s.Cwd = d.str()
	s.Umask = d.u32()
	s.Stdin = d.bytes()
	s.StdinPos = d.u32()
	s.Stdout = d.bytes()
	s.NumFDSlots = d.u32()
	nfds := d.count(16)
	for i := 0; i < nfds && !d.fail; i++ {
		var fd FDState
		fd.Slot = d.u32()
		fd.Kind = d.u32()
		fd.Path = d.str()
		fd.Offset = d.u32()
		s.FDs = append(s.FDs, fd)
	}
	nsigs := d.count(8)
	for i := 0; i < nsigs && !d.fail; i++ {
		s.Sigs = append(s.Sigs, SigState{Num: d.u32(), Handler: d.u32()})
	}

	for _, p := range []*uint64{
		&s.SyscallCount, &s.VerifyCount, &s.VerifyAESBlocks,
		&s.DeniedCount, &s.AuditedCount,
		&s.CacheHits, &s.CacheMisses, &s.CacheInvalidations,
	} {
		*p = d.u64()
	}

	s.Paged = d.bool()
	if s.Paged {
		s.PageBase = d.u32()
		s.PageHand = d.u32()
		s.PageFlags = d.bytes()
		ngens := d.count(8)
		if !d.fail && ngens != len(s.PageFlags) {
			return nil, fmt.Errorf("%w: page generation count %d for %d pages",
				ErrMalformed, ngens, len(s.PageFlags))
		}
		s.PageGens = make([]uint64, 0, ngens)
		for i := 0; i < ngens; i++ {
			s.PageGens = append(s.PageGens, d.u64())
		}
		nswap := d.count(8)
		for i := 0; i < nswap && !d.fail; i++ {
			var sp SwapPageState
			sp.Index = d.u32()
			sp.Data = d.bytes()
			s.SwapPages = append(s.SwapPages, sp)
		}
	}
	if d.fail {
		return nil, fmt.Errorf("%w: short payload", ErrMalformed)
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b)-d.off)
	}
	return &s, nil
}

// enc is a little-endian appender.
type enc struct{ b []byte }

func (e *enc) raw(b []byte) { e.b = append(e.b, b...) }
func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) bytes(b []byte) { e.u32(uint32(len(b))); e.raw(b) }
func (e *enc) str(s string)   { e.u32(uint32(len(s))); e.b = append(e.b, s...) }

// dec is the matching bounds-checked reader; any overrun latches fail
// and makes every further read return zeros.
type dec struct {
	b    []byte
	off  int
	fail bool
}

func (d *dec) raw(n int) []byte {
	if d.fail || n < 0 || len(d.b)-d.off < n {
		d.fail = true
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8() uint8 {
	b := d.raw(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.raw(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.raw(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// bool accepts only the canonical encodings 0 and 1, so decode stays a
// strict inverse of encode on everything it accepts.
func (d *dec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail = true
		return false
	}
}

func (d *dec) bytes() []byte {
	n := int(d.u32())
	b := d.raw(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (d *dec) str() string { return string(d.bytes()) }

// count reads an element count and sanity-checks it against the bytes
// remaining (each element needs at least minSize bytes), so a forged
// count cannot drive a huge allocation.
func (d *dec) count(minSize int) int {
	n := int(d.u32())
	if d.fail || n < 0 || n*minSize > len(d.b)-d.off {
		d.fail = true
		return 0
	}
	return n
}
