package pattern

import "testing"

// FuzzMatchVerify checks the core §5.1 contract on arbitrary inputs:
// whenever the application-side Match succeeds, the kernel-side Verify
// accepts the produced hint; and neither side ever panics.
func FuzzMatchVerify(f *testing.F) {
	f.Add("/tmp/{foo,bar}*baz", "/tmp/foofoobaz")
	f.Add("*", "")
	f.Add("/a/{b,c}/*", "/a/b/xyz")
	f.Fuzz(func(t *testing.T, pat, arg string) {
		p, err := Parse(pat)
		if err != nil {
			return
		}
		hint, err := p.Match(arg)
		if err != nil {
			return
		}
		if _, err := p.Verify(arg, hint); err != nil {
			t.Fatalf("Match produced hint %v for %q vs %q but Verify rejects: %v", hint, arg, pat, err)
		}
	})
}
