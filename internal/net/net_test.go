package net

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestListenDialAccept(t *testing.T) {
	n := New()
	l, err := n.Listen(7, 8)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	if _, err := n.Listen(7, 8); err != ErrInUse {
		t.Fatalf("second Listen = %v, want ErrInUse", err)
	}
	c, err := n.Dial(7, nil)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	s, err := l.Accept(nil)
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if c.RemotePort() != 7 || s.LocalPort() != 7 {
		t.Errorf("ports: client remote %d, server local %d, want 7/7", c.RemotePort(), s.LocalPort())
	}
	if c.LocalPort() != s.RemotePort() || c.LocalPort() < ephemeralBase {
		t.Errorf("ephemeral port mismatch: %d vs %d", c.LocalPort(), s.RemotePort())
	}
	if err := c.Send([]byte("ping"), nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg, err := s.Recv(nil)
	if err != nil || !bytes.Equal(msg, []byte("ping")) {
		t.Fatalf("Recv = %q, %v", msg, err)
	}
}

func TestMessageFraming(t *testing.T) {
	n := New()
	a, b := n.Pair()
	for i := 0; i < 3; i++ {
		if err := a.Send([]byte(fmt.Sprintf("m%d", i)), nil); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	// Three sends are three messages, never coalesced.
	for i := 0; i < 3; i++ {
		msg, err := b.Recv(nil)
		if err != nil || string(msg) != fmt.Sprintf("m%d", i) {
			t.Fatalf("Recv %d = %q, %v", i, msg, err)
		}
	}
	if _, err := b.Recv(nil); err != ErrWouldBlock {
		t.Fatalf("empty Recv without gate = %v, want ErrWouldBlock", err)
	}
}

func TestDialRefusedAndBacklog(t *testing.T) {
	n := New()
	if _, err := n.Dial(9, nil); err != ErrRefused {
		t.Fatalf("Dial unbound = %v, want ErrRefused", err)
	}
	l, err := n.Listen(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Dial(9, nil); err != nil {
		t.Fatalf("first Dial: %v", err)
	}
	if _, err := n.Dial(9, nil); err != ErrWouldBlock {
		t.Fatalf("Dial into full backlog = %v, want ErrWouldBlock", err)
	}
	if _, err := l.Accept(nil); err != nil {
		t.Fatalf("Accept: %v", err)
	}
	if _, err := n.Dial(9, nil); err != nil {
		t.Fatalf("Dial after drain: %v", err)
	}
	l.Close()
	if _, err := n.Dial(9, nil); err != ErrRefused {
		t.Fatalf("Dial closed = %v, want ErrRefused", err)
	}
	if _, err := l.Accept(nil); err != ErrClosed {
		t.Fatalf("Accept closed = %v, want ErrClosed", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	n := New()
	a, b := n.Pair()
	if err := a.Send([]byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	a.Close()
	// Peer drains buffered data, then sees end of stream.
	msg, err := b.Recv(nil)
	if err != nil || string(msg) != "x" {
		t.Fatalf("Recv after close = %q, %v", msg, err)
	}
	if msg, err := b.Recv(nil); err != nil || msg != nil {
		t.Fatalf("EOF Recv = %q, %v, want nil, nil", msg, err)
	}
	if err := b.Send([]byte("y"), nil); err != ErrReset {
		t.Fatalf("Send to closed peer = %v, want ErrReset", err)
	}
	if err := a.Send([]byte("z"), nil); err != ErrClosed {
		t.Fatalf("Send on closed endpoint = %v, want ErrClosed", err)
	}
	a.Close() // idempotent
}

func TestSendBounds(t *testing.T) {
	n := New()
	a, b := n.Pair()
	if err := a.Send(make([]byte, MaxMessage+1), nil); err != ErrMsgSize {
		t.Fatalf("oversized Send = %v, want ErrMsgSize", err)
	}
	// Fill the peer inbox to the bound; the next send would block.
	chunk := make([]byte, MaxMessage)
	for i := 0; i < connBuffer/MaxMessage; i++ {
		if err := a.Send(chunk, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if err := a.Send([]byte("one more"), nil); err != ErrWouldBlock {
		t.Fatalf("Send into full buffer = %v, want ErrWouldBlock", err)
	}
	if _, err := b.Recv(nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Send([]byte("fits now"), nil); err != nil {
		t.Fatalf("Send after drain: %v", err)
	}
}

// chanGate adapts a buffered channel to the Gate interface for tests.
type chanGate chan struct{}

func (g chanGate) Enter() { g <- struct{}{} }
func (g chanGate) Leave() { <-g }

// TestBlockingWithGate runs a server and clients on real goroutines
// with fewer run slots than processes — the regime the scheduler
// creates — and checks that gate-released blocking makes progress.
func TestBlockingWithGate(t *testing.T) {
	const clients = 8
	n := New()
	l, err := n.Listen(80, 4)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chanGate, 2) // 2 run slots for 9 goroutines
	var wg sync.WaitGroup
	wg.Add(1 + clients)
	go func() {
		defer wg.Done()
		gate.Enter()
		defer gate.Leave()
		for i := 0; i < clients; i++ {
			c, err := l.Accept(gate)
			if err != nil {
				t.Errorf("Accept: %v", err)
				return
			}
			for {
				msg, err := c.Recv(gate)
				if err != nil {
					t.Errorf("server Recv: %v", err)
					return
				}
				if msg == nil {
					break
				}
				if err := c.Send(msg, gate); err != nil {
					t.Errorf("server Send: %v", err)
					return
				}
			}
			c.Close()
		}
	}()
	for i := 0; i < clients; i++ {
		go func(id int) {
			defer wg.Done()
			gate.Enter()
			defer gate.Leave()
			c, err := n.Dial(80, gate)
			if err != nil {
				t.Errorf("client %d Dial: %v", id, err)
				return
			}
			for j := 0; j < 16; j++ {
				want := fmt.Sprintf("c%d-%d", id, j)
				if err := c.Send([]byte(want), gate); err != nil {
					t.Errorf("client %d Send: %v", id, err)
					return
				}
				got, err := c.Recv(gate)
				if err != nil || string(got) != want {
					t.Errorf("client %d echo = %q, %v", id, got, err)
					return
				}
			}
			c.Close()
		}(i)
	}
	wg.Wait()
}

func TestAddrRoundTrip(t *testing.T) {
	for _, port := range []uint16{0, 1, 7, 80, 443, 0xffff} {
		v := EncodeAddr(port)
		a, ok := DecodeAddr(v)
		if !ok || a.Port != port || a.Family != AFInet {
			t.Errorf("round trip port %d: %+v ok=%v", port, a, ok)
		}
		if a.Encode() != v {
			t.Errorf("re-encode port %d: %#x != %#x", port, a.Encode(), v)
		}
	}
	for _, bad := range []uint32{0, 1 << 24, 3 << 24, EncodeAddr(80) | 0x00010000} {
		if _, ok := DecodeAddr(bad); ok {
			t.Errorf("DecodeAddr(%#x) accepted", bad)
		}
	}
}
