// andrew.go drives the Andrew-style multiprogram benchmark of Section
// 4.3: a series of routine tasks (directory creation, copying, catting,
// permission changes, archiving, compression, moving, deleting) performed
// by the general-purpose tools of tools.go, each invocation about 12,000
// system calls per iteration.
package workload

import (
	"fmt"
	"strings"

	"asc/internal/binfmt"
	"asc/internal/installer"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/vfs"
)

// AndrewConfig sizes the benchmark.
type AndrewConfig struct {
	Files      int // number of data files (default 10)
	FileSize   int // bytes per file (default 32 KiB)
	Iterations int // benchmark iterations (default 1)
}

func (c *AndrewConfig) defaults() {
	if c.Files == 0 {
		c.Files = 10
	}
	if c.FileSize == 0 {
		c.FileSize = 32 << 10
	}
	if c.Iterations == 0 {
		c.Iterations = 1
	}
}

// AndrewResult aggregates one benchmark run.
type AndrewResult struct {
	Cycles   uint64
	Syscalls uint64
	Runs     int // tool invocations
}

// BuildTools assembles and links every benchmark tool.
func BuildTools(os libc.OS) (map[string]*binfmt.File, error) {
	out := make(map[string]*binfmt.File, len(ToolNames()))
	for _, name := range ToolNames() {
		src, ok := ToolSource(name)
		if !ok {
			return nil, fmt.Errorf("workload: no source for tool %q", name)
		}
		exe, err := BuildSource(name, src, os)
		if err != nil {
			return nil, err
		}
		out[name] = exe
	}
	return out, nil
}

// InstallTools runs the trusted installer over every tool.
func InstallTools(tools map[string]*binfmt.File, key []byte) (map[string]*binfmt.File, error) {
	out := make(map[string]*binfmt.File, len(tools))
	pid := uint32(1)
	for _, name := range ToolNames() {
		exe, ok := tools[name]
		if !ok {
			continue
		}
		installed, _, _, err := installer.Install(exe, name, installer.Options{Key: key, ProgramID: pid})
		if err != nil {
			return nil, fmt.Errorf("workload: install %s: %w", name, err)
		}
		out[name] = installed
		pid++
	}
	return out, nil
}

// RunAndrew executes the benchmark with the given tool binaries. When key
// is non-nil the kernel enforces authenticated calls (the binaries must
// have been installed); otherwise it runs permissively.
func RunAndrew(tools map[string]*binfmt.File, key []byte, cfg AndrewConfig) (AndrewResult, error) {
	cfg.defaults()
	fs := vfs.New()
	for _, d := range []string{"/tmp", "/data", "/work"} {
		if err := fs.MkdirAll(d, 0o755); err != nil {
			return AndrewResult{}, err
		}
	}
	// Deterministic data files.
	for i := 0; i < cfg.Files; i++ {
		data := make([]byte, cfg.FileSize)
		for j := range data {
			data[j] = byte('a' + (i+j)%26)
		}
		if err := fs.WriteFile(fmt.Sprintf("/data/f%d.txt", i), data, 0o644); err != nil {
			return AndrewResult{}, err
		}
	}

	mode := kernel.Enforce
	if key == nil {
		mode = kernel.Permissive
	}
	k, err := kernel.New(fs, key, kernel.WithMode(mode))
	if err != nil {
		return AndrewResult{}, err
	}

	var res AndrewResult
	runTool := func(name, stdin string) error {
		exe, ok := tools[name]
		if !ok {
			return fmt.Errorf("workload: missing tool %q", name)
		}
		p, err := k.Spawn(exe, name)
		if err != nil {
			return err
		}
		p.Stdin = []byte(stdin)
		if err := k.Run(p, 2_000_000_000); err != nil {
			return fmt.Errorf("workload: %s: %w", name, err)
		}
		if p.Killed {
			return fmt.Errorf("workload: %s killed by monitor: %s", name, p.KilledBy)
		}
		res.Cycles += p.CPU.Cycles
		res.Syscalls += p.SyscallCount
		res.Runs++
		return nil
	}

	lines := func(ss ...string) string { return strings.Join(append(ss, "", ""), "\n") }
	var names, copies, moved []string
	for i := 0; i < cfg.Files; i++ {
		names = append(names, fmt.Sprintf("/data/f%d.txt", i))
		copies = append(copies, fmt.Sprintf("/work/f%d.txt", i))
		moved = append(moved, fmt.Sprintf("/work/sub1/f%d.txt", i))
	}

	for it := 0; it < cfg.Iterations; it++ {
		// Directory creation.
		if err := runTool("mkdir", lines("/work/sub1", "/work/sub2")); err != nil {
			return res, err
		}
		// File copying.
		var cpScript []string
		for i := range names {
			cpScript = append(cpScript, names[i], copies[i])
		}
		if err := runTool("cp", lines(cpScript...)); err != nil {
			return res, err
		}
		// Read everything back.
		if err := runTool("cat", lines(copies...)); err != nil {
			return res, err
		}
		// Permission checking.
		if err := runTool("chmod", lines(append([]string{"384"}, copies...)...)); err != nil {
			return res, err
		}
		// Archival.
		if err := runTool("tar", lines(append([]string{"/work/arch.tar"}, copies...)...)); err != nil {
			return res, err
		}
		// Compression and decompression.
		if err := runTool("gzip", lines("/work/arch.tar")); err != nil {
			return res, err
		}
		if err := runTool("gunzip", lines("/work/arch.tar.gz")); err != nil {
			return res, err
		}
		// Moving files.
		var mvScript []string
		for i := range copies {
			mvScript = append(mvScript, copies[i], moved[i])
		}
		if err := runTool("mv", lines(mvScript...)); err != nil {
			return res, err
		}
		// Deleting files.
		if err := runTool("rm", lines(append(append([]string{}, moved...), "/work/arch.tar")...)); err != nil {
			return res, err
		}
	}
	return res, nil
}
