package ckpt

import (
	"fmt"
	"testing"
)

func fillStore(t *testing.T, n int) *Store {
	t.Helper()
	s := NewStore()
	for i := 1; i <= n; i++ {
		if err := s.Put(uint64(i), []byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	return s
}

func TestStorePruneKeepsNewest(t *testing.T) {
	s := fillStore(t, 5)
	if got := s.Prune(2); got != 3 {
		t.Fatalf("Prune(2) dropped %d, want 3", got)
	}
	if s.Len() != 2 {
		t.Fatalf("Len after prune = %d, want 2", s.Len())
	}
	chain := s.Chain()
	if chain[0].Epoch != 5 || chain[1].Epoch != 4 {
		t.Fatalf("chain epochs after prune = %d,%d, want 5,4", chain[0].Epoch, chain[1].Epoch)
	}
	// The epoch floor survives pruning: Put still rejects stale epochs.
	if err := s.Put(3, []byte("stale")); err == nil {
		t.Fatal("Put(3) after pruning to {4,5} should fail")
	}
	if err := s.Put(6, []byte("next")); err != nil {
		t.Fatalf("Put(6) after prune: %v", err)
	}
}

func TestStorePruneBoundaries(t *testing.T) {
	// keep=0 empties the store.
	s := fillStore(t, 3)
	if got := s.Prune(0); got != 3 {
		t.Fatalf("Prune(0) dropped %d, want 3", got)
	}
	if s.Len() != 0 {
		t.Fatalf("Len after Prune(0) = %d, want 0", s.Len())
	}
	// keep > len is a no-op.
	s = fillStore(t, 3)
	if got := s.Prune(10); got != 0 {
		t.Fatalf("Prune(10) dropped %d, want 0", got)
	}
	if s.Len() != 3 {
		t.Fatalf("Len after Prune(10) = %d, want 3", s.Len())
	}
	// Negative keep behaves like zero.
	if got := s.Prune(-1); got != 3 {
		t.Fatalf("Prune(-1) dropped %d, want 3", got)
	}
	// Pruning an empty store is a no-op.
	if got := s.Prune(0); got != 0 {
		t.Fatalf("Prune(0) on empty dropped %d, want 0", got)
	}
}
