package net

import (
	"encoding/binary"
	"fmt"
)

// The pollfd set crosses the system-call boundary as a guest-memory
// record: nfds consecutive 8-byte entries, each two little-endian
// 32-bit words. Word 0 is the fd; word 1 packs events in the low half
// and revents in the high half. The *pointer* to the set is a
// MOVI-loaded constant in every workload, so the installer's dataflow
// analysis classifies it as a policy-constrained immediate and the
// call MAC pins it — a tampered poll set address dies as a call-MAC
// mismatch, not as a misread readiness report.

// PollFDSize is the byte size of one encoded pollfd entry.
const PollFDSize = 8

// MaxPollFDs caps one poll set; larger nfds fail with EINVAL at the
// syscall layer and a length error here.
const MaxPollFDs = 128

// PollFD is one decoded pollfd entry.
type PollFD struct {
	FD      uint32
	Events  uint16
	REvents uint16
}

// EncodePollSet packs a poll set into its guest-memory form.
func EncodePollSet(fds []PollFD) []byte {
	b := make([]byte, len(fds)*PollFDSize)
	for i, f := range fds {
		binary.LittleEndian.PutUint32(b[i*PollFDSize:], f.FD)
		binary.LittleEndian.PutUint32(b[i*PollFDSize+4:],
			uint32(f.Events)|uint32(f.REvents)<<16)
	}
	return b
}

// DecodePollSet unpacks a guest poll set. It fails on a length that is
// not a whole number of entries or that exceeds MaxPollFDs entries.
func DecodePollSet(b []byte) ([]PollFD, error) {
	if len(b)%PollFDSize != 0 {
		return nil, fmt.Errorf("net: poll set length %d not a multiple of %d", len(b), PollFDSize)
	}
	if len(b) > MaxPollFDs*PollFDSize {
		return nil, fmt.Errorf("net: poll set of %d entries exceeds max %d", len(b)/PollFDSize, MaxPollFDs)
	}
	fds := make([]PollFD, len(b)/PollFDSize)
	for i := range fds {
		fds[i].FD = binary.LittleEndian.Uint32(b[i*PollFDSize:])
		w := binary.LittleEndian.Uint32(b[i*PollFDSize+4:])
		fds[i].Events = uint16(w)
		fds[i].REvents = uint16(w >> 16)
	}
	return fds, nil
}
