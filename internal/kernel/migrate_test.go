package kernel

import (
	"errors"
	"testing"

	"asc/internal/ckpt"
	"asc/internal/vfs"
	"asc/internal/vm"
)

// newClusterPair builds two kernels over one shared filesystem — the
// cluster arrangement, where a file opened on one node resolves on the
// other after a migration.
func newClusterPair(t *testing.T) (src, dst *Kernel) {
	t.Helper()
	fs := vfs.New()
	for _, d := range []string{"/tmp", "/etc", "/bin", "/data"} {
		if err := fs.Mkdir(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	a, err := New(fs, testKey)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(fs, testKey)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// TestExportImportRoundTrip: a process exported mid-loop from node 1
// and imported on node 2 finishes with exactly the uninterrupted run's
// output and totals — including the open file descriptor surviving the
// hop via the shared filesystem.
func TestExportImportRoundTrip(t *testing.T) {
	exe := buildAuthExe(t, ckptLoopSrc)
	src, dst := newClusterPair(t)

	ref, err := src.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, src, ref)
	if ref.Killed || ref.Code != 0 {
		t.Fatalf("reference run failed: killed=%v code=%d", ref.Killed, ref.Code)
	}

	p, err := src.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(p, ref.CPU.Cycles/2); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("slice run: err = %v, want cycle limit", err)
	}
	env, inner, err := src.Export(p, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ep, err := ckpt.SealedEpoch(inner); err != nil || ep != 1 {
		t.Fatalf("inner blob epoch = %d, %v; want 1", ep, err)
	}

	r, err := dst.Import(exe, 2, env, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Cycles != p.CPU.Cycles {
		t.Errorf("imported cycles %d, exported at %d", r.CPU.Cycles, p.CPU.Cycles)
	}
	runToCompletion(t, dst, r)
	if r.Killed {
		t.Fatalf("imported process killed: %v", r.KilledBy)
	}
	if r.Output() != ref.Output() {
		t.Errorf("output %q, want %q", r.Output(), ref.Output())
	}
	if r.CPU.Cycles != ref.CPU.Cycles || r.SyscallCount != ref.SyscallCount {
		t.Errorf("totals diverged: cycles %d/%d syscalls %d/%d",
			r.CPU.Cycles, ref.CPU.Cycles, r.SyscallCount, ref.SyscallCount)
	}
}

// TestImportRejections: each way an import can be wrong dies with its
// own classified error, before any process state exists.
func TestImportRejections(t *testing.T) {
	exe := buildAuthExe(t, ckptLoopSrc)
	src, dst := newClusterPair(t)

	p, err := src.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(p, 2000); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("slice run: err = %v", err)
	}
	env, _, err := src.Export(p, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		self   uint32
		epoch  uint64
		mangle func([]byte) []byte
		want   error
		reason string
	}{
		{"node spoof", 3, 5, nil, ckpt.ErrNode, ckpt.ReasonNode},
		{"epoch mismatch", 2, 6, nil, ckpt.ErrEpoch, ckpt.ReasonEpoch},
		{"tampered envelope", 2, 5,
			func(b []byte) []byte { b[len(b)/2] ^= 1; return b },
			ckpt.ErrSeal, ckpt.ReasonSeal},
		{"truncated envelope", 2, 5,
			func(b []byte) []byte { return b[:8] },
			ckpt.ErrTruncated, ckpt.ReasonTruncated},
	}
	for _, tc := range cases {
		blob := append([]byte(nil), env...)
		if tc.mangle != nil {
			blob = tc.mangle(blob)
		}
		_, err := dst.Import(exe, tc.self, blob, tc.epoch)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
		if got := ckpt.Reason(err); got != tc.reason {
			t.Errorf("%s: reason = %q, want %q", tc.name, got, tc.reason)
		}
	}

	// The genuine envelope still imports after all the rejected
	// attempts — rejection is side-effect-free.
	if _, err := dst.Import(exe, 2, env, 5); err != nil {
		t.Fatalf("clean import after rejections: %v", err)
	}
}

// TestPeekMigration: staging decodes the envelope header without
// building process state, and verifies the seal first.
func TestPeekMigration(t *testing.T) {
	exe := buildAuthExe(t, ckptLoopSrc)
	src, dst := newClusterPair(t)
	p, err := src.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Run(p, 2000); !errors.Is(err, vm.ErrCycleLimit) {
		t.Fatalf("slice run: err = %v", err)
	}
	env, _, err := src.Export(p, 3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := dst.PeekMigration(env)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 3 || m.Src != 1 || m.Dst != 2 || m.Name != "test" {
		t.Fatalf("peek = %+v", m)
	}
	env[0] ^= 1
	if _, err := dst.PeekMigration(env); !errors.Is(err, ckpt.ErrSeal) {
		t.Fatalf("tampered peek: err = %v, want ErrSeal", err)
	}
}
