// Attack demo: the Section 4.1 experiments against the paper's
// buffer-overflow victim, plus the Section 5.5 Frankenstein attack with
// and without its countermeasure.
//
// Run with: go run ./examples/attackdemo
package main

import (
	"fmt"
	"log"

	"asc"
	"asc/internal/attack"
)

func main() {
	fmt.Println("The victim reads a file name with an unbounded gets() into a")
	fmt.Println("32-byte stack buffer, then runs /bin/ls on it. The stack is")
	fmt.Println("executable (2005-era), so injected code runs -- until it needs")
	fmt.Println("the kernel.")
	fmt.Println()

	lab, err := attack.NewLab(asc.NewKey("attack-demo"))
	if err != nil {
		log.Fatal(err)
	}
	outcomes, err := lab.Battery()
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		fmt.Printf("%s\n", o)
		fmt.Printf("    %s\n", o.Description)
		if o.Detail != "" {
			fmt.Printf("    %s\n", o.Detail)
		}
		fmt.Println()
	}
	fmt.Println("Summary: the monitor converts every compromise into a fail-stop")
	fmt.Println("failure at the system call boundary; only the benign baseline and")
	fmt.Println("the cross-program splice WITHOUT unique block IDs run -- and the")
	fmt.Println("latter is exactly what the §5.5 countermeasure eliminates.")
}
