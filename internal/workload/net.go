// net.go defines the networked workload corpus: a request/response
// server (echo plus a small key/value store) and a load-generating
// client, both speaking over the deterministic in-memory network. Every
// byte they exchange crosses the authenticated trap handler: listen
// ports and destination addresses are constant packed sockaddrs (so
// verification pins them via the call MAC), and the client's fixed
// protocol payloads are authenticated strings.
//
// The programs are written so a fleet of identical clients produces
// order-independent aggregate output: the server prints only totals
// (requests served, bytes replied), never per-connection detail, and
// each client prints only its own byte count. That keeps RunAll output
// deterministic for any worker count and accept interleaving.
package workload

import (
	"fmt"

	"asc/internal/net"
)

// NetServerPort is the well-known port the workload server listens on.
const NetServerPort uint16 = 7

// NetRequestsPerIter is how many requests one client iteration issues
// (SET, GET, echo).
const NetRequestsPerIter = 3

// NetBytesPerIter is how many reply bytes one client iteration
// receives: "OK" (2) + stored value "abcdefgh" (8) + echoed
// "Zechopayload" (12).
const NetBytesPerIter = 2 + 8 + 12

// NetServerOutput is the exact aggregate line the server prints after
// serving clients×iters iterations from `clients` connections.
func NetServerOutput(clients, iters int) string {
	reqs := clients * iters * NetRequestsPerIter
	bytes := clients * iters * NetBytesPerIter
	return fmt.Sprintf("%d requests %d bytes\n", reqs, bytes)
}

// NetClientOutput is the exact line each client prints.
func NetClientOutput(iters int) string {
	return fmt.Sprintf("%d bytes\n", iters*NetBytesPerIter)
}

// NetServerSource returns the server program: accept `conns`
// connections in sequence and answer requests on each until the peer
// shuts down. Requests dispatch on their first byte — 'S' stores
// payload[2:] in slot payload[1], 'G' fetches a slot, anything else is
// echoed. The listen address is a MOVI constant, so the bind site's
// policy pins the port.
func NetServerSource(conns int) string {
	return fmt.Sprintf(`
        .text
        .global main
main:
        MOVI r1, 2
        MOVI r2, 1
        MOVI r3, 0
        CALL socket
        MOV r15, r0
        MOV r1, r15
        MOVI r2, %[1]d          ; packed AF_INET sockaddr, port %[2]d
        CALL bind
        MOV r1, r15
        MOVI r2, 8
        CALL listen
        MOVI r13, %[3]d         ; connections to serve
.accept:
        MOVI r7, 0
        BEQ r13, r7, .done
        MOV r1, r15
        MOVI r2, 0
        CALL accept
        MOV r11, r0
.serve:
        MOV r1, r11
        MOVI r2, iobuf
        MOVI r3, 256
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        MOV r10, r0
        MOVI r7, 0
        BEQ r10, r7, .connend   ; peer shut down
        MOVI r7, nreqs          ; nreqs++
        LOAD r8, [r7+0]
        ADDI r8, r8, 1
        STORE [r7+0], r8
        MOVI r7, iobuf
        LOADB r8, [r7+0]
        MOVI r9, 83             ; 'S'
        BEQ r8, r9, .set
        MOVI r9, 71             ; 'G'
        BEQ r8, r9, .get
        MOVI r2, iobuf          ; default: echo the request back
        MOV r3, r10
        JMP .reply
.set:
        LOADB r8, [r7+1]
        ADDI r8, r8, -48        ; slot = digit - '0'
        ANDI r8, r8, 7
        ADDI r9, r10, -2
        MULI r7, r8, 4
        MOVI r1, kvlen
        ADD r1, r1, r7
        STORE [r1+0], r9        ; kvlen[slot] = n-2
        MULI r7, r8, 64
        MOVI r1, kv
        ADD r1, r1, r7
        MOVI r2, iobuf
        ADDI r2, r2, 2
        ADDI r3, r10, -2
        CALL memcpy             ; kv[slot] = payload
        MOVI r2, okmsg
        MOVI r3, 2
        JMP .reply
.get:
        LOADB r8, [r7+1]
        ADDI r8, r8, -48
        ANDI r8, r8, 7
        MULI r7, r8, 4
        MOVI r2, kvlen
        ADD r2, r2, r7
        LOAD r3, [r2+0]
        MULI r7, r8, 64
        MOVI r2, kv
        ADD r2, r2, r7
.reply:
        MOV r1, r11
        MOVI r4, 0
        MOVI r5, 0
        CALL sendto
        MOVI r7, nbytes         ; nbytes += reply length
        LOAD r8, [r7+0]
        ADD r8, r8, r0
        STORE [r7+0], r8
        JMP .serve
.connend:
        MOV r1, r11
        CALL close
        ADDI r13, r13, -1
        JMP .accept
.done:
        MOVI r7, nreqs
        LOAD r1, [r7+0]
        CALL print_uint
        MOVI r1, sep
        CALL puts
        MOVI r7, nbytes
        LOAD r1, [r7+0]
        CALL print_uint
        MOVI r1, tail
        CALL puts
        MOVI r0, 0
        RET
        .rodata
okmsg:  .asciz "OK"
sep:    .asciz " requests "
tail:   .asciz " bytes\n"
        .bss
iobuf:  .space 256
kv:     .space 512
kvlen:  .space 32
nreqs:  .space 4
nbytes: .space 4
`, net.EncodeAddr(NetServerPort), NetServerPort, conns)
}

// NetClientSource returns the load-generator client: connect to the
// server and run `iters` iterations of SET, GET, echo, then print the
// total reply bytes received. The destination address is a MOVI
// constant at every sendto site and the three request payloads are
// authenticated strings, so both the where and the what of each send
// are covered by verification.
func NetClientSource(iters int) string {
	return fmt.Sprintf(`
        .text
        .global main
main:
        MOVI r1, 2
        MOVI r2, 1
        MOVI r3, 0
        CALL socket
        MOV r15, r0
        MOV r1, r15
        MOVI r2, %[1]d          ; packed AF_INET sockaddr, port %[2]d
        CALL connect
        MOVI r13, %[3]d         ; iterations
        MOVI r11, 0             ; reply bytes received
.loop:
        MOVI r7, 0
        BEQ r13, r7, .done
        MOV r1, r15
        MOVI r2, setmsg
        MOVI r3, 10
        MOVI r4, 0
        MOVI r5, %[1]d
        CALL sendto
        CALL getreply
        MOV r1, r15
        MOVI r2, getmsg
        MOVI r3, 2
        MOVI r4, 0
        MOVI r5, %[1]d
        CALL sendto
        CALL getreply
        MOV r1, r15
        MOVI r2, echomsg
        MOVI r3, 12
        MOVI r4, 0
        MOVI r5, %[1]d
        CALL sendto
        CALL getreply
        ADDI r13, r13, -1
        JMP .loop
.done:
        MOV r1, r15
        CALL close
        MOV r1, r11
        CALL print_uint
        MOVI r1, tail
        CALL puts
        MOVI r0, 0
        RET
getreply:
        MOV r1, r15
        MOVI r2, iobuf
        MOVI r3, 256
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        ADD r11, r11, r0
        RET
        .rodata
setmsg: .asciz "S3abcdefgh"
getmsg: .asciz "G3"
echomsg: .asciz "Zechopayload"
tail:   .asciz " bytes\n"
        .bss
iobuf:  .space 256
`, net.EncodeAddr(NetServerPort), NetServerPort, iters)
}
