package cluster

import (
	"errors"
	"strings"
	"testing"

	"asc/internal/binfmt"
	"asc/internal/core"
	"asc/internal/kernel"
	"asc/internal/workload"
)

var testKey = []byte("0123456789abcdef")

// clusterLoopSrc is the fleet guest: a file held open across a long
// getpid loop (so mid-run checkpoints capture a live descriptor), then
// a close and a final report. Checkpointable (no sockets or pipes) and
// long enough to span many scheduler ticks at test slice sizes.
const clusterLoopSrc = `
        .text
        .global main
main:
        MOVI r1, path
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r11, r0
        MOVI r12, 200
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOV r1, r11
        CALL close
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/tmp/cluster.out"
msg:    .asciz "cluster loop done"
`

// buildGuest assembles and installs the fleet guest under the shared
// test key.
func buildGuest(t testing.TB) *binfmt.File {
	t.Helper()
	v := workload.FaultVictim{Name: "guest", Source: clusterLoopSrc}
	exe, err := v.Build(testKey)
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// refRun computes the single-node reference result for the guest.
func refRun(t testing.TB, exe *binfmt.File) *core.Result {
	t.Helper()
	sys, err := core.NewSystem(core.Config{Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Exec(exe, "ref", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed || res.ExitCode != 0 {
		t.Fatalf("reference run failed: %+v", res)
	}
	return res
}

// testConfig is a small-slice cluster so short guests span many ticks
// and checkpoint often.
func testConfig(nodes int) Config {
	return Config{
		Nodes:           nodes,
		Key:             testKey,
		SliceCycles:     512,
		CheckpointEvery: 512,
		HeartbeatEvery:  1,
		MissThreshold:   3,
	}
}

// fleet builds n requests over the same guest binary.
func fleet(exe *binfmt.File, n int) []core.RunRequest {
	reqs := make([]core.RunRequest, n)
	for i := range reqs {
		reqs[i] = core.RunRequest{Exe: exe, Name: "p" + string(rune('0'+i))}
	}
	return reqs
}

// checkFleetOutputs asserts every process finished cleanly with the
// single-node reference output.
func checkFleetOutputs(t *testing.T, rep *FleetReport, ref *core.Result) {
	t.Helper()
	for _, pr := range rep.Procs {
		if pr.Err != nil {
			t.Errorf("%s: err = %v", pr.Name, pr.Err)
			continue
		}
		if pr.Result == nil || pr.Result.Killed || pr.Result.ExitCode != 0 {
			t.Errorf("%s: bad result %+v", pr.Name, pr.Result)
			continue
		}
		if pr.Result.Output != ref.Output {
			t.Errorf("%s: output %q, want %q", pr.Name, pr.Result.Output, ref.Output)
		}
	}
}

// TestFleetCompletesAcrossNodes: a healthy 3-node cluster runs a
// 5-process fleet to completion, every output identical to the
// single-node run, with zero failovers.
func TestFleetCompletesAcrossNodes(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	d, err := New(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 5))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep, ref)
	if len(rep.NodesDown) != 0 || rep.MissedBeats != 0 {
		t.Errorf("healthy cluster: down=%v missed=%d", rep.NodesDown, rep.MissedBeats)
	}
	homes := map[NodeID]bool{}
	for _, pr := range rep.Procs {
		if pr.Failovers != 0 || pr.ColdStarts != 0 || pr.WarmRestarts != 0 {
			t.Errorf("%s: unexpected recovery %+v", pr.Name, pr)
		}
		homes[pr.Node] = true
	}
	if len(homes) != 3 {
		t.Errorf("fleet used %d nodes, want 3 (round-robin)", len(homes))
	}
}

// TestNodeCrashFailsOverWarm: killing a node mid-fleet loses no
// authenticated state — its processes fail over to survivors, restored
// from their newest sealed checkpoint (zero cold starts), and every
// surviving output is identical to the single-node run.
func TestNodeCrashFailsOverWarm(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	cfg := testConfig(3)
	cfg.OnTick = func(d *Director, tick int) {
		if tick == 6 {
			d.CrashNode(2)
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 6))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep, ref)
	if len(rep.NodesDown) != 1 || rep.NodesDown[0] != 2 {
		t.Fatalf("NodesDown = %v, want [2]", rep.NodesDown)
	}
	failed := 0
	for _, pr := range rep.Procs {
		if pr.Failovers == 0 {
			continue
		}
		failed++
		if pr.ColdStarts != 0 {
			t.Errorf("%s: %d cold starts with checkpoints available", pr.Name, pr.ColdStarts)
		}
		if pr.WarmRestarts == 0 {
			t.Errorf("%s: failed over without a warm restart", pr.Name)
		}
		if pr.Node == 2 {
			t.Errorf("%s: still homed on the dead node", pr.Name)
		}
	}
	if failed == 0 {
		t.Error("no process failed over despite a crashed node")
	}
	if rep.MissedBeats < cfg.MissThreshold {
		t.Errorf("missed beats %d below threshold %d", rep.MissedBeats, cfg.MissThreshold)
	}
}

// TestClusterDegradesToOneNode: with every other node killed the fleet
// degrades gracefully onto the last survivor and still completes with
// reference outputs.
func TestClusterDegradesToOneNode(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	cfg := testConfig(3)
	cfg.OnTick = func(d *Director, tick int) {
		switch tick {
		case 5:
			d.CrashNode(1)
		case 12:
			d.CrashNode(3)
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 4))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep, ref)
	if len(rep.NodesDown) != 2 {
		t.Fatalf("NodesDown = %v, want two nodes", rep.NodesDown)
	}
	for _, pr := range rep.Procs {
		if pr.Node != 2 {
			t.Errorf("%s finished on node %d, want the survivor 2", pr.Name, pr.Node)
		}
		if pr.ColdStarts != 0 {
			t.Errorf("%s: %d cold starts", pr.Name, pr.ColdStarts)
		}
	}
}

// TestAllNodesLost: when the last node dies the fleet fails loudly with
// ErrNoNodes rather than hanging the virtual clock.
func TestAllNodesLost(t *testing.T) {
	exe := buildGuest(t)
	cfg := testConfig(2)
	cfg.OnTick = func(d *Director, tick int) {
		if tick == 4 {
			d.CrashNode(1)
			d.CrashNode(2)
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Procs {
		if !errors.Is(pr.Err, ErrNoNodes) {
			t.Errorf("%s: err = %v, want ErrNoNodes", pr.Name, pr.Err)
		}
	}
}

// TestMigrationMovesProcess: a planned migration hands a running
// process to another node with zero replayed cycles and an unchanged
// final output.
func TestMigrationMovesProcess(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	cfg := testConfig(2)
	cfg.OnTick = func(d *Director, tick int) {
		if tick == 4 {
			reason, err := d.Migrate("p0", 2, CleanMigrate())
			if err != nil || reason != "" {
				t.Errorf("migrate: reason=%q err=%v", reason, err)
			}
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 1))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep, ref)
	pr := rep.Procs[0]
	if pr.Node != 2 || pr.Migrations != 1 {
		t.Errorf("proc = %+v, want finished on node 2 after 1 migration", pr)
	}
	if pr.ReplayCycles != 0 {
		t.Errorf("planned migration replayed %d cycles, want 0", pr.ReplayCycles)
	}
	if pr.Failovers != 0 || pr.ColdStarts != 0 {
		t.Errorf("migration counted as failure recovery: %+v", pr)
	}
}

// TestMigrationReplayRejected: the same sealed envelope delivered a
// second time — to its own destination node, which verified it happily
// the first time — dies at the fence with "epoch-replay". Delivered to
// a third node instead, it dies in the kernel with "node-mismatch".
// The legitimate process is unharmed either way.
func TestMigrationReplayRejected(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	cfg := testConfig(3)
	var captured []byte
	var epoch uint64
	cfg.OnTick = func(d *Director, tick int) {
		switch tick {
		case 4:
			opts := CleanMigrate()
			opts.Capture = &captured
			reason, err := d.Migrate("p0", 2, opts)
			if err != nil || reason != "" {
				t.Errorf("migrate: reason=%q err=%v", reason, err)
			}
			epoch = d.byName["p0"].store.NewestEpoch()
		case 6:
			// Replay: same genuine envelope, same destination.
			reason, err := d.Deliver(captured, 2, "p0", epoch)
			if err != nil {
				t.Errorf("replay deliver: %v", err)
			}
			if reason != "epoch-replay" {
				t.Errorf("replay reason = %q, want epoch-replay", reason)
			}
		case 8:
			// Spoof: same envelope at a node it was never sealed for.
			reason, err := d.Deliver(captured, 3, "p0", epoch)
			if err != nil {
				t.Errorf("spoof deliver: %v", err)
			}
			if reason != "node-mismatch" {
				t.Errorf("spoof reason = %q, want node-mismatch", reason)
			}
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(captured) == 0 {
		t.Fatal("no envelope captured")
	}
	checkFleetOutputs(t, rep, ref)
	if rep.Procs[0].Node != 2 {
		t.Errorf("process on node %d, want 2", rep.Procs[0].Node)
	}
}

// TestTornMigrationRecoversWarm: a migration whose destination dies
// mid-transfer loses nothing — the epoch was made durable before the
// first byte crossed the fabric and the source was fenced, so ordinary
// failover re-places the process warm on a survivor.
func TestTornMigrationRecoversWarm(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	cfg := testConfig(3)
	cfg.OnTick = func(d *Director, tick int) {
		if tick == 4 {
			opts := CleanMigrate()
			opts.TornAfter = 1
			opts.CrashDst = true
			reason, err := d.Migrate("p0", 2, opts)
			if err != nil || reason != "" {
				t.Errorf("torn migrate: reason=%q err=%v", reason, err)
			}
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 1))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep, ref)
	pr := rep.Procs[0]
	if pr.ColdStarts != 0 {
		t.Errorf("torn migration fell to %d cold starts", pr.ColdStarts)
	}
	if pr.WarmRestarts == 0 {
		t.Error("torn migration did not recover warm")
	}
	if pr.Node == 2 {
		t.Error("process homed on the crashed destination")
	}
	if pr.ReplayCycles != 0 {
		t.Errorf("replayed %d cycles; export epoch was durable, want 0", pr.ReplayCycles)
	}
}

// TestHeartbeatDelayBelowThreshold: a slow node that misses fewer
// consecutive beats than the threshold is never declared failed — no
// false suspicion, no failovers.
func TestHeartbeatDelayBelowThreshold(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	cfg := testConfig(2)
	cfg.OnTick = func(d *Director, tick int) {
		if tick == 3 {
			d.DelayHeartbeats(2, cfg.MissThreshold-1)
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 4))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep, ref)
	if len(rep.NodesDown) != 0 {
		t.Errorf("false suspicion: NodesDown = %v", rep.NodesDown)
	}
	if rep.MissedBeats != cfg.MissThreshold-1 {
		t.Errorf("missed beats = %d, want %d", rep.MissedBeats, cfg.MissThreshold-1)
	}
	for _, pr := range rep.Procs {
		if pr.Failovers != 0 {
			t.Errorf("%s: %d failovers from a transient delay", pr.Name, pr.Failovers)
		}
	}
}

// TestEnforcementTravelsWithProcess: a Deny-mode fleet keeps its
// enforcement mode across a crash failover (the mode rides inside the
// sealed checkpoint).
func TestEnforcementTravelsWithProcess(t *testing.T) {
	exe := buildGuest(t)
	cfg := testConfig(2)
	cfg.Enforcement = kernel.EnforceDeny
	cfg.OnTick = func(d *Director, tick int) {
		if tick == 5 {
			d.CrashNode(1)
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Procs {
		if pr.Err != nil || pr.Result == nil {
			t.Fatalf("%s: %v", pr.Name, pr.Err)
		}
	}
	// The survivor node's kernel holds the failed-over process; its
	// enforcement stayed Deny through the restore.
	pl := d.byName["p0"]
	if pl.proc.Enforcement != kernel.EnforceDeny {
		t.Errorf("restored enforcement = %v, want deny", pl.proc.Enforcement)
	}
}

// TestEventsNarrateFailover: the event log names the crash detection
// and the warm re-placement, for the failover timeline in EXPERIMENTS.
func TestEventsNarrateFailover(t *testing.T) {
	exe := buildGuest(t)
	cfg := testConfig(2)
	cfg.OnTick = func(d *Director, tick int) {
		if tick == 5 {
			d.CrashNode(2)
		}
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 2))
	if err != nil {
		t.Fatal(err)
	}
	var all []string
	for _, ev := range rep.Events {
		all = append(all, ev.What)
	}
	joined := strings.Join(all, "\n")
	for _, want := range []string{"node 2 crashed", "node 2 declared failed", "re-placed on node 1 (warm"} {
		if !strings.Contains(joined, want) {
			t.Errorf("events missing %q:\n%s", want, joined)
		}
	}
}
