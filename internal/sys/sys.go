// Package sys defines the system call ABI of the simulated platform: the
// system call numbers, names, and signatures shared by the libc stubs, the
// kernel's dispatch table, the installer's static analysis, and the policy
// machinery.
//
// Signature metadata records, for each argument slot, whether the argument
// is a plain integer, a file descriptor, a NUL-terminated string, or an
// output-only pointer the kernel fills in. The installer uses this to
// classify arguments for Table 3 of the paper (args / o/p / auth / mv /
// fds) and to decide which constant string arguments become authenticated
// strings.
package sys

import "fmt"

// MaxArgs is the maximum number of system call arguments (registers R1..R5).
const MaxArgs = 5

// ArgClass describes the role of one argument slot in a syscall signature.
type ArgClass uint8

// Argument classes.
const (
	ArgNone      ArgClass = iota // slot unused
	ArgInt                       // integer input
	ArgFD                        // file descriptor input
	ArgPath                      // NUL-terminated path string
	ArgStr                       // NUL-terminated non-path string
	ArgBufIn                     // pointer to input buffer (paired length arg)
	ArgBufOut                    // pointer to output buffer (kernel writes)
	ArgStructOut                 // pointer to output struct (kernel writes)
	ArgPtr                       // other input pointer
)

// IsOutput reports whether the argument is output-only: the kernel writes
// through the pointer and the caller supplies no meaningful input value
// beyond the buffer address. These are the "o/p" column of Table 3.
func (c ArgClass) IsOutput() bool { return c == ArgBufOut || c == ArgStructOut }

// IsString reports whether the argument is a NUL-terminated string whose
// contents (not just address) are policy-relevant.
func (c ArgClass) IsString() bool { return c == ArgPath || c == ArgStr }

func (c ArgClass) String() string {
	switch c {
	case ArgNone:
		return "none"
	case ArgInt:
		return "int"
	case ArgFD:
		return "fd"
	case ArgPath:
		return "path"
	case ArgStr:
		return "str"
	case ArgBufIn:
		return "bufin"
	case ArgBufOut:
		return "bufout"
	case ArgStructOut:
		return "structout"
	case ArgPtr:
		return "ptr"
	default:
		return fmt.Sprintf("ArgClass(%d)", uint8(c))
	}
}

// Sig is the signature of one system call.
type Sig struct {
	Num      uint16
	Name     string
	Args     []ArgClass // len <= MaxArgs
	ReturnFD bool       // returns a fresh file descriptor (open, dup, socket, accept)
}

// NArgs returns the number of declared arguments.
func (s Sig) NArgs() int { return len(s.Args) }

// System call numbers. The numbering is specific to the simulated
// platform; it deliberately does not match Linux or OpenBSD, reinforcing
// the paper's point that policies are not portable across operating
// systems.
const (
	SysExit          uint16 = 1
	SysRead          uint16 = 2
	SysWrite         uint16 = 3
	SysOpen          uint16 = 4
	SysClose         uint16 = 5
	SysStat          uint16 = 6
	SysFstat         uint16 = 7
	SysLseek         uint16 = 8
	SysBrk           uint16 = 9
	SysMmap          uint16 = 10
	SysMunmap        uint16 = 11
	SysGetpid        uint16 = 12
	SysGettimeofday  uint16 = 13
	SysMkdir         uint16 = 14
	SysRmdir         uint16 = 15
	SysUnlink        uint16 = 16
	SysReadlink      uint16 = 17
	SysSymlink       uint16 = 18
	SysChdir         uint16 = 19
	SysGetcwd        uint16 = 20
	SysDup           uint16 = 21
	SysDup2          uint16 = 22
	SysPipe          uint16 = 23
	SysExecve        uint16 = 24
	SysKill          uint16 = 25
	SysSocket        uint16 = 26
	SysSendto        uint16 = 27
	SysRecvfrom      uint16 = 28
	SysBind          uint16 = 29
	SysConnect       uint16 = 30
	SysSigaction     uint16 = 31
	SysNanosleep     uint16 = 32
	SysFcntl         uint16 = 33
	SysGetdirentries uint16 = 34
	SysFstatfs       uint16 = 35
	SysUname         uint16 = 36
	SysSysconf       uint16 = 37
	SysMadvise       uint16 = 38
	SysWritev        uint16 = 39
	SysUmask         uint16 = 40
	SysChmod         uint16 = 41
	SysGetuid        uint16 = 42
	SysGeteuid       uint16 = 43
	SysGetgid        uint16 = 44
	SysGetegid       uint16 = 45
	SysTime          uint16 = 46
	SysRename        uint16 = 47
	SysLink          uint16 = 48
	SysAccess        uint16 = 49
	SysFtruncate     uint16 = 50
	SysTruncate      uint16 = 51
	SysSync          uint16 = 52
	SysFsync         uint16 = 53
	SysIoctl         uint16 = 54
	SysGetppid       uint16 = 55
	SysGetpgrp       uint16 = 56
	SysSetsid        uint16 = 57
	SysSigprocmask   uint16 = 58
	SysAlarm         uint16 = 59
	SysPause         uint16 = 60
	SysUtime         uint16 = 61
	SysStatfs        uint16 = 62
	SysGetrlimit     uint16 = 63
	SysSetrlimit     uint16 = 64
	SysGetrusage     uint16 = 65
	SysTimes         uint16 = 66
	SysGethostname   uint16 = 67
	SysSelect        uint16 = 68
	SysPoll          uint16 = 69
	SysReadv         uint16 = 70
	SysPread         uint16 = 71
	SysPwrite        uint16 = 72
	SysFlock         uint16 = 73
	SysFchmod        uint16 = 74
	SysFchown        uint16 = 75
	SysChown         uint16 = 76
	SysListen        uint16 = 77
	SysAccept        uint16 = 78
	SysShutdown      uint16 = 79
	SysGetsockname   uint16 = 80
	SysGetpeername   uint16 = 81
	SysSetsockopt    uint16 = 82
	SysGetsockopt    uint16 = 83
	SysSocketpair    uint16 = 84
	SysWait4         uint16 = 85
	SysGetgroups     uint16 = 86
	SysMprotect      uint16 = 87
	SysMsync         uint16 = 88

	// SysIndirect is the generic indirect system call (__syscall) present
	// only in the OpenBSD kernel personality: argument 1 is the real
	// system call number, arguments shift right by one. The OpenBSD libc
	// implements mmap through it, reproducing the Table 2 discrepancy
	// where the ASC policy lists __syscall while Systrace lists mmap.
	SysIndirect uint16 = 89

	// MaxSyscall is the highest valid system call number.
	MaxSyscall uint16 = 89
)

// Errno values returned (negated) by failing system calls.
const (
	EPERM        = 1
	ENOENT       = 2
	EBADF        = 9
	ENOMEM       = 12
	EACCES       = 13
	EFAULT       = 14
	EEXIST       = 17
	ENOTDIR      = 20
	EISDIR       = 21
	EINVAL       = 22
	ENFILE       = 23
	ENOSPC       = 28
	ENOSYS       = 38
	ENOTEMPTY    = 39
	ELOOP        = 40
	ENAMETOOLONG = 36
	EAGAIN       = 11
	EPIPE        = 32
	ENOTSOCK     = 88
	EMSGSIZE     = 90
	EADDRINUSE   = 98
	ECONNRESET   = 104
	EISCONN      = 106
	ENOTCONN     = 107
	ECONNREFUSED = 111
)

// mmap protection bits and mapping flags (Linux values).
const (
	ProtNone  = 0
	ProtRead  = 1
	ProtWrite = 2
	ProtExec  = 4

	MapPrivate   = 0x02
	MapAnonymous = 0x20
)

var sigs = []Sig{
	{SysExit, "exit", []ArgClass{ArgInt}, false},
	{SysRead, "read", []ArgClass{ArgFD, ArgBufOut, ArgInt}, false},
	{SysWrite, "write", []ArgClass{ArgFD, ArgBufIn, ArgInt}, false},
	{SysOpen, "open", []ArgClass{ArgPath, ArgInt, ArgInt}, true},
	{SysClose, "close", []ArgClass{ArgFD}, false},
	{SysStat, "stat", []ArgClass{ArgPath, ArgStructOut}, false},
	{SysFstat, "fstat", []ArgClass{ArgFD, ArgStructOut}, false},
	{SysLseek, "lseek", []ArgClass{ArgFD, ArgInt, ArgInt}, false},
	{SysBrk, "brk", []ArgClass{ArgInt}, false},
	{SysMmap, "mmap", []ArgClass{ArgInt, ArgInt, ArgInt, ArgInt, ArgFD}, false},
	{SysMunmap, "munmap", []ArgClass{ArgPtr, ArgInt}, false},
	{SysGetpid, "getpid", nil, false},
	{SysGettimeofday, "gettimeofday", []ArgClass{ArgStructOut}, false},
	{SysMkdir, "mkdir", []ArgClass{ArgPath, ArgInt}, false},
	{SysRmdir, "rmdir", []ArgClass{ArgPath}, false},
	{SysUnlink, "unlink", []ArgClass{ArgPath}, false},
	{SysReadlink, "readlink", []ArgClass{ArgPath, ArgBufOut, ArgInt}, false},
	{SysSymlink, "symlink", []ArgClass{ArgPath, ArgPath}, false},
	{SysChdir, "chdir", []ArgClass{ArgPath}, false},
	{SysGetcwd, "getcwd", []ArgClass{ArgBufOut, ArgInt}, false},
	{SysDup, "dup", []ArgClass{ArgFD}, true},
	{SysDup2, "dup2", []ArgClass{ArgFD, ArgInt}, true},
	{SysPipe, "pipe", []ArgClass{ArgStructOut}, false},
	{SysExecve, "execve", []ArgClass{ArgPath, ArgPtr, ArgPtr}, false},
	{SysKill, "kill", []ArgClass{ArgInt, ArgInt}, false},
	{SysSocket, "socket", []ArgClass{ArgInt, ArgInt, ArgInt}, true},
	// Socket addresses are passed by value as a packed word (see
	// internal/net.SockAddr): a constant destination port is therefore a
	// constrained immediate in the call encoding, not an opaque pointer.
	// The payload is ArgStr, not ArgBufIn: a constant message becomes a
	// MAC-covered authenticated string, so static analysis protects
	// fixed protocol payloads end to end.
	{SysSendto, "sendto", []ArgClass{ArgFD, ArgStr, ArgInt, ArgInt, ArgInt}, false},
	{SysRecvfrom, "recvfrom", []ArgClass{ArgFD, ArgBufOut, ArgInt, ArgInt, ArgStructOut}, false},
	{SysBind, "bind", []ArgClass{ArgFD, ArgInt}, false},
	{SysConnect, "connect", []ArgClass{ArgFD, ArgInt}, false},
	{SysSigaction, "sigaction", []ArgClass{ArgInt, ArgPtr, ArgStructOut}, false},
	{SysNanosleep, "nanosleep", []ArgClass{ArgPtr, ArgStructOut}, false},
	{SysFcntl, "fcntl", []ArgClass{ArgFD, ArgInt, ArgInt}, false},
	{SysGetdirentries, "getdirentries", []ArgClass{ArgFD, ArgBufOut, ArgInt}, false},
	{SysFstatfs, "fstatfs", []ArgClass{ArgFD, ArgStructOut}, false},
	{SysUname, "uname", []ArgClass{ArgStructOut}, false},
	{SysSysconf, "sysconf", []ArgClass{ArgInt}, false},
	{SysMadvise, "madvise", []ArgClass{ArgPtr, ArgInt, ArgInt}, false},
	{SysWritev, "writev", []ArgClass{ArgFD, ArgPtr, ArgInt}, false},
	{SysUmask, "umask", []ArgClass{ArgInt}, false},
	{SysChmod, "chmod", []ArgClass{ArgPath, ArgInt}, false},
	{SysGetuid, "getuid", nil, false},
	{SysGeteuid, "geteuid", nil, false},
	{SysGetgid, "getgid", nil, false},
	{SysGetegid, "getegid", nil, false},
	{SysTime, "time", []ArgClass{ArgStructOut}, false},
	{SysRename, "rename", []ArgClass{ArgPath, ArgPath}, false},
	{SysLink, "link", []ArgClass{ArgPath, ArgPath}, false},
	{SysAccess, "access", []ArgClass{ArgPath, ArgInt}, false},
	{SysFtruncate, "ftruncate", []ArgClass{ArgFD, ArgInt}, false},
	{SysTruncate, "truncate", []ArgClass{ArgPath, ArgInt}, false},
	{SysSync, "sync", nil, false},
	{SysFsync, "fsync", []ArgClass{ArgFD}, false},
	{SysIoctl, "ioctl", []ArgClass{ArgFD, ArgInt, ArgPtr}, false},
	{SysGetppid, "getppid", nil, false},
	{SysGetpgrp, "getpgrp", nil, false},
	{SysSetsid, "setsid", nil, false},
	{SysSigprocmask, "sigprocmask", []ArgClass{ArgInt, ArgPtr, ArgStructOut}, false},
	{SysAlarm, "alarm", []ArgClass{ArgInt}, false},
	{SysPause, "pause", nil, false},
	{SysUtime, "utime", []ArgClass{ArgPath, ArgPtr}, false},
	{SysStatfs, "statfs", []ArgClass{ArgPath, ArgStructOut}, false},
	{SysGetrlimit, "getrlimit", []ArgClass{ArgInt, ArgStructOut}, false},
	{SysSetrlimit, "setrlimit", []ArgClass{ArgInt, ArgPtr}, false},
	{SysGetrusage, "getrusage", []ArgClass{ArgInt, ArgStructOut}, false},
	{SysTimes, "times", []ArgClass{ArgStructOut}, false},
	{SysGethostname, "gethostname", []ArgClass{ArgBufOut, ArgInt}, false},
	{SysSelect, "select", []ArgClass{ArgInt, ArgPtr, ArgPtr, ArgPtr, ArgPtr}, false},
	{SysPoll, "poll", []ArgClass{ArgPtr, ArgInt, ArgInt}, false},
	{SysReadv, "readv", []ArgClass{ArgFD, ArgPtr, ArgInt}, false},
	{SysPread, "pread", []ArgClass{ArgFD, ArgBufOut, ArgInt, ArgInt}, false},
	{SysPwrite, "pwrite", []ArgClass{ArgFD, ArgBufIn, ArgInt, ArgInt}, false},
	{SysFlock, "flock", []ArgClass{ArgFD, ArgInt}, false},
	{SysFchmod, "fchmod", []ArgClass{ArgFD, ArgInt}, false},
	{SysFchown, "fchown", []ArgClass{ArgFD, ArgInt, ArgInt}, false},
	{SysChown, "chown", []ArgClass{ArgPath, ArgInt, ArgInt}, false},
	{SysListen, "listen", []ArgClass{ArgFD, ArgInt}, false},
	{SysAccept, "accept", []ArgClass{ArgFD, ArgStructOut}, true},
	{SysShutdown, "shutdown", []ArgClass{ArgFD, ArgInt}, false},
	{SysGetsockname, "getsockname", []ArgClass{ArgFD, ArgStructOut}, false},
	{SysGetpeername, "getpeername", []ArgClass{ArgFD, ArgStructOut}, false},
	{SysSetsockopt, "setsockopt", []ArgClass{ArgFD, ArgInt, ArgInt, ArgPtr, ArgInt}, false},
	{SysGetsockopt, "getsockopt", []ArgClass{ArgFD, ArgInt, ArgInt, ArgStructOut, ArgPtr}, false},
	{SysSocketpair, "socketpair", []ArgClass{ArgInt, ArgInt, ArgInt, ArgStructOut}, false},
	{SysWait4, "wait4", []ArgClass{ArgInt, ArgStructOut, ArgInt, ArgStructOut}, false},
	{SysGetgroups, "getgroups", []ArgClass{ArgInt, ArgStructOut}, false},
	{SysMprotect, "mprotect", []ArgClass{ArgPtr, ArgInt, ArgInt}, false},
	{SysMsync, "msync", []ArgClass{ArgPtr, ArgInt, ArgInt}, false},
	{SysIndirect, "__syscall", []ArgClass{ArgInt, ArgInt, ArgInt, ArgInt, ArgInt}, false},
}

var (
	byNum  map[uint16]*Sig
	byName map[string]*Sig
)

func init() {
	byNum = make(map[uint16]*Sig, len(sigs))
	byName = make(map[string]*Sig, len(sigs))
	for i := range sigs {
		s := &sigs[i]
		if _, dup := byNum[s.Num]; dup {
			panic(fmt.Sprintf("sys: duplicate syscall number %d", s.Num))
		}
		if _, dup := byName[s.Name]; dup {
			panic(fmt.Sprintf("sys: duplicate syscall name %q", s.Name))
		}
		byNum[s.Num] = s
		byName[s.Name] = s
	}
}

// Lookup returns the signature for a syscall number. It reports whether
// the number is defined.
func Lookup(num uint16) (Sig, bool) {
	s, ok := byNum[num]
	if !ok {
		return Sig{}, false
	}
	return *s, true
}

// LookupName returns the signature for a syscall name.
func LookupName(name string) (Sig, bool) {
	s, ok := byName[name]
	if !ok {
		return Sig{}, false
	}
	return *s, true
}

// Name returns the name of a syscall number, or "sys_<num>" if unknown.
func Name(num uint16) string {
	if s, ok := byNum[num]; ok {
		return s.Name
	}
	return fmt.Sprintf("sys_%d", num)
}

// All returns all signatures in ascending syscall-number order. The
// returned slice is a copy.
func All() []Sig {
	out := make([]Sig, len(sigs))
	copy(out, sigs)
	return out
}

// Count is the number of defined system calls.
func Count() int { return len(sigs) }

// FSRead is the set of read-related syscall names that the Systrace
// baseline's "fsread" policy alias expands to. The membership mirrors the
// effect visible in the paper's Table 2, where readlink enters the
// Systrace policy only through fsread.
var FSRead = []string{"open", "read", "stat", "access", "readlink"}

// FSWrite is the set of write-related syscall names the "fswrite" alias
// expands to; mkdir, rmdir, and unlink enter trained policies only
// through it (Table 2).
var FSWrite = []string{"write", "mkdir", "rmdir", "unlink"}
