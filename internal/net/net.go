// Package net is the deterministic in-memory loopback network behind
// the kernel's socket system calls: a port namespace, listeners with
// bounded backlogs, and message-framed stream endpoints with bounded
// buffers and blocking semantics.
//
// # Determinism contract
//
// The network is shared mutable state, so *which* connection a listener
// accepts first, and which ephemeral port a client is assigned, depend
// on goroutine interleaving. What does NOT depend on interleaving is
// everything a guest program can observe deterministically by
// construction of the workloads: streams are message-framed (each Send
// enqueues exactly one message, each Recv dequeues exactly one), so
// read boundaries never shift with timing; blocking consumes no modeled
// cycles (the trap handler charges the same fixed cost whether or not a
// call waited); and the per-connection protocol is private to the two
// endpoints. Workloads that must produce byte-stable artifacts keep
// their outputs order-independent (aggregate counters, not accept-order
// logs).
//
// # Blocking and the scheduler gate
//
// Guest processes run to completion on pool workers (internal/sched),
// so a blocking socket call must not pin its worker: with one worker a
// parked server would starve the client that could unblock it. Blocking
// entry points therefore take a Gate — the scheduler's run-slot
// semaphore. Before parking on a condition variable the caller releases
// its run slot (another runnable process takes the worker), and after
// waking it re-acquires the slot before returning to guest code. A nil
// Gate means the caller has no scheduler slot to yield (standalone
// programs, or sockets in nonblocking mode); such callers never park —
// operations that would block fail with ErrWouldBlock instead, keeping
// single-process runs hang-free and giving O_NONBLOCK its EAGAIN
// semantics for free.
//
// # Wakeup topology
//
// One lock (n.mu) still guards the whole network — that sidesteps
// lock-ordering concerns — but waiting is per-object: each listener has
// an accept cond (pending connection arrived) and a space cond (backlog
// slot freed), each endpoint has a data cond (message arrived in my
// inbox) and a space cond (room freed in my inbox, which is what my
// peer's Send waits for). Hot-path state changes Signal exactly one
// waiter instead of broadcasting to every parked socket in the fleet;
// without this a 10k-client dial storm degenerates into O(clients²)
// spurious wakeups on a single global cond. Broadcasts survive only on
// rare or terminal transitions (port bind, close) and for pollers,
// which by design watch many objects at once and are counted so the
// broadcast is skipped entirely when nobody polls.
package net

import (
	"errors"
	"sync"
)

// Gate is the scheduler's run-slot semaphore (implemented by
// sched.Gate). Leave releases the caller's slot and must not block;
// Enter re-acquires one and may block.
type Gate interface {
	Leave()
	Enter()
}

// Sentinel errors; the kernel maps them onto errno values.
var (
	ErrInUse      = errors.New("net: port in use")           // EADDRINUSE
	ErrRefused    = errors.New("net: connection refused")    // ECONNREFUSED
	ErrReset      = errors.New("net: connection reset")      // ECONNRESET
	ErrNotConn    = errors.New("net: not connected")         // ENOTCONN
	ErrIsConn     = errors.New("net: already connected")     // EISCONN
	ErrMsgSize    = errors.New("net: message too long")      // EMSGSIZE
	ErrWouldBlock = errors.New("net: operation would block") // EAGAIN
	ErrClosed     = errors.New("net: socket closed")         // EBADF-ish; caller decides
)

const (
	// MaxMessage bounds one framed message (one Send).
	MaxMessage = 4096
	// connBuffer bounds the bytes queued toward one endpoint; a sender
	// blocks (or fails with ErrWouldBlock) once the peer's inbox holds
	// this much.
	connBuffer = 16384
	// MaxBacklog caps a listener's pending-connection queue.
	MaxBacklog = 64
	// ephemeralBase is the first port auto-assigned to connecting
	// sockets. Assignment order is interleaving-dependent; ephemeral
	// ports are never part of deterministic workload output.
	ephemeralBase = 49152
)

// Network is one loopback network: a port namespace plus the single
// lock that all socket operations share. Parking is per-object (see the
// package comment); the network-level conds cover the two cross-object
// waits — dialers waiting for a port to be bound at all, and pollers
// watching many objects at once.
type Network struct {
	mu        sync.Mutex
	bindCond  *sync.Cond // a port was bound; dialers to unbound ports recheck
	pollCond  *sync.Cond // any state change; only signaled while pollers exist
	pollers   int        // pollers currently parked on pollCond
	ports     map[uint16]*Listener
	ephemeral uint16
}

// New creates an empty loopback network.
func New() *Network {
	n := &Network{ports: make(map[uint16]*Listener), ephemeral: ephemeralBase}
	n.bindCond = sync.NewCond(&n.mu)
	n.pollCond = sync.NewCond(&n.mu)
	return n
}

// wait parks the caller on c until the next signal. With a gate, the
// caller's scheduler slot is released while parked and re-acquired —
// without the network lock held — before returning.
func (n *Network) wait(c *sync.Cond, g Gate) {
	if g == nil {
		c.Wait()
		return
	}
	g.Leave()
	c.Wait()
	n.mu.Unlock()
	g.Enter()
	n.mu.Lock()
}

// wakePollers unblocks parked Poll calls after a state change. The
// counter check keeps the non-polling fast path at one integer compare.
func (n *Network) wakePollers() {
	if n.pollers > 0 {
		n.pollCond.Broadcast()
	}
}

// Listener is a bound, listening port with a bounded backlog of
// connections that completed Dial but have not been Accepted.
type Listener struct {
	n          *Network
	port       uint16
	capacity   int
	backlog    []*Conn
	closed     bool
	acceptCond *sync.Cond // pending connection enqueued (or closed)
	spaceCond  *sync.Cond // backlog slot freed (or closed)
}

// Listen binds and listens on port with the given backlog capacity
// (clamped to [1, MaxBacklog]). It fails with ErrInUse if the port has
// a live listener.
func (n *Network) Listen(port uint16, backlog int) (*Listener, error) {
	if backlog < 1 {
		backlog = 1
	}
	if backlog > MaxBacklog {
		backlog = MaxBacklog
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.ports[port]; ok {
		return nil, ErrInUse
	}
	l := &Listener{n: n, port: port, capacity: backlog}
	l.acceptCond = sync.NewCond(&n.mu)
	l.spaceCond = sync.NewCond(&n.mu)
	n.ports[port] = l
	n.bindCond.Broadcast() // port now bound: unblock dialers waiting for it
	n.wakePollers()
	return l, nil
}

// Port returns the listener's bound port.
func (l *Listener) Port() uint16 { return l.port }

// Accept dequeues the oldest pending connection, parking (via g) while
// the backlog is empty. With a nil gate an empty backlog fails with
// ErrWouldBlock. A closed listener fails with ErrClosed.
func (l *Listener) Accept(g Gate) (*Conn, error) {
	n := l.n
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if l.closed {
			return nil, ErrClosed
		}
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			copy(l.backlog, l.backlog[1:])
			l.backlog = l.backlog[:len(l.backlog)-1]
			l.spaceCond.Signal() // backlog slot freed: one dialer may fill it
			return c, nil
		}
		if g == nil {
			return nil, ErrWouldBlock
		}
		n.wait(l.acceptCond, g)
	}
}

// Close unbinds the port. Connections still in the backlog are reset
// (their dialers see ErrReset on use); already-accepted connections are
// unaffected.
func (l *Listener) Close() {
	n := l.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	delete(n.ports, l.port)
	for _, c := range l.backlog {
		c.closeLocked()
	}
	l.backlog = nil
	l.acceptCond.Broadcast()
	l.spaceCond.Broadcast()
	n.wakePollers()
}

// Dial connects to a listening port, parking (via g) while the port is
// not yet bound or the listener's backlog is full. It returns the
// client endpoint; the server endpoint is queued for Accept.
//
// A gated dial to an unbound port waits for a listener to appear
// rather than failing: fleet startup order is interleaving-dependent,
// so a client racing ahead of its server must rendezvous, not refuse
// (a fleet whose clients dial a port no process ever binds deadlocks —
// that is a workload bug, like a lost pipe reader). Without a gate
// there is no sibling to wait for, so an unbound port fails with
// ErrRefused immediately; with a nil gate a full backlog means
// ErrWouldBlock.
func (n *Network) Dial(port uint16, g Gate) (*Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		l, ok := n.ports[port]
		if !ok || l.closed {
			if g == nil {
				return nil, ErrRefused
			}
			n.wait(n.bindCond, g)
			continue
		}
		if len(l.backlog) < l.capacity {
			client, server := n.pairLocked()
			client.localPort = n.nextEphemeralLocked()
			client.remotePort = port
			server.localPort = port
			server.remotePort = client.localPort
			l.backlog = append(l.backlog, server)
			l.acceptCond.Signal() // new pending connection: one acceptor takes it
			n.wakePollers()
			return client, nil
		}
		if g == nil {
			return nil, ErrWouldBlock
		}
		n.wait(l.spaceCond, g)
	}
}

func (n *Network) nextEphemeralLocked() uint16 {
	p := n.ephemeral
	n.ephemeral++
	if n.ephemeral == 0 {
		n.ephemeral = ephemeralBase
	}
	return p
}

// Pair creates a connected endpoint pair outside the port namespace
// (the socketpair system call).
func (n *Network) Pair() (*Conn, *Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, b := n.pairLocked()
	return a, b
}

func (n *Network) pairLocked() (*Conn, *Conn) {
	a := &Conn{n: n}
	b := &Conn{n: n}
	a.dataCond = sync.NewCond(&n.mu)
	a.spaceCond = sync.NewCond(&n.mu)
	b.dataCond = sync.NewCond(&n.mu)
	b.spaceCond = sync.NewCond(&n.mu)
	a.peer, b.peer = b, a
	return a, b
}

// Conn is one endpoint of a message-framed stream. Each Send enqueues
// one message into the peer's inbox; each Recv dequeues one.
type Conn struct {
	n          *Network
	peer       *Conn
	inbox      [][]byte
	inboxBytes int
	closed     bool
	localPort  uint16
	remotePort uint16
	dataCond   *sync.Cond // message arrived in my inbox (or stream ended)
	spaceCond  *sync.Cond // room freed in my inbox; my peer's Send waits here
}

// LocalPort returns the port bound to this endpoint (0 for socketpair
// endpoints).
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemotePort returns the peer's port (0 for socketpair endpoints).
func (c *Conn) RemotePort() uint16 { return c.remotePort }

// Send enqueues msg toward the peer, parking (via g) while the peer's
// inbox is full. Oversized messages fail with ErrMsgSize; a closed
// endpoint fails with ErrClosed, a closed peer with ErrReset (EPIPE at
// the syscall layer). The bytes are copied.
func (c *Conn) Send(msg []byte, g Gate) error {
	if len(msg) > MaxMessage {
		return ErrMsgSize
	}
	n := c.n
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if c.closed {
			return ErrClosed
		}
		if c.peer.closed {
			return ErrReset
		}
		if c.peer.inboxBytes+len(msg) <= connBuffer || len(c.peer.inbox) == 0 {
			c.peer.inbox = append(c.peer.inbox, append([]byte(nil), msg...))
			c.peer.inboxBytes += len(msg)
			c.peer.dataCond.Signal() // data available: one receiver takes it
			n.wakePollers()
			return nil
		}
		if g == nil {
			return ErrWouldBlock
		}
		n.wait(c.peer.spaceCond, g)
	}
}

// Recv dequeues one message, parking (via g) while the inbox is empty
// and the peer is open. An empty inbox with a closed peer returns
// (nil, nil): end of stream. With a nil gate an empty inbox fails with
// ErrWouldBlock.
func (c *Conn) Recv(g Gate) ([]byte, error) {
	n := c.n
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if c.closed {
			return nil, ErrClosed
		}
		if len(c.inbox) > 0 {
			msg := c.inbox[0]
			copy(c.inbox, c.inbox[1:])
			c.inbox[len(c.inbox)-1] = nil
			c.inbox = c.inbox[:len(c.inbox)-1]
			c.inboxBytes -= len(msg)
			c.spaceCond.Signal() // buffer space freed: my peer's sender may run
			n.wakePollers()
			return msg, nil
		}
		if c.peer.closed {
			return nil, nil // end of stream
		}
		if g == nil {
			return nil, ErrWouldBlock
		}
		n.wait(c.dataCond, g)
	}
}

// Close shuts the endpoint down. Pending inbox data is dropped; the
// peer's next Recv on an empty inbox sees end of stream, its next Send
// sees ErrReset. Closing twice is a no-op.
func (c *Conn) Close() {
	n := c.n
	n.mu.Lock()
	defer n.mu.Unlock()
	c.closeLocked()
	n.wakePollers()
}

func (c *Conn) closeLocked() {
	if c.closed {
		return
	}
	c.closed = true
	c.inbox = nil
	c.inboxBytes = 0
	// Terminal transition: wake everything that could be parked on
	// either endpoint so it observes ErrClosed / ErrReset / EOF.
	c.dataCond.Broadcast()
	c.spaceCond.Broadcast()
	if c.peer != nil {
		c.peer.dataCond.Broadcast()  // receivers see end of stream
		c.peer.spaceCond.Broadcast() // nothing will free space now
	}
}

// Closed reports whether the endpoint has been closed.
func (c *Conn) Closed() bool {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	return c.closed
}
