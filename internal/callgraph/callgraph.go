// Package callgraph builds the program call graph and derives the
// system-call graph: for every system call site, the set of system call
// sites that can immediately precede it at run time.
//
// Following Section 3.3 of the paper, "the graph giving all possible
// system call orderings is calculated from the full call graph, which
// gives all possible orderings of all basic blocks". We build an
// interprocedural supergraph over basic blocks — call blocks edge into
// callee entries, return blocks edge back to each call site's fallthrough
// — and solve a forward dataflow problem whose value at a block is the set
// of system call blocks that may have executed most recently. Indirect
// calls conservatively target every address-taken function.
//
// The distinguished predecessor ID 0 (Entry) means "no system call has
// executed yet"; it appears in the predecessor set of any site reachable
// from program entry without crossing another system call.
package callgraph

import (
	"fmt"
	"sort"

	"asc/internal/binfmt"
	"asc/internal/cfg"
	"asc/internal/sys"
)

// Entry is the distinguished predecessor ID meaning "program start".
const Entry = 0

// Graph is the call graph plus system-call-order analysis results.
type Graph struct {
	Prog *cfg.Program

	// Callees maps each function to the functions it may call
	// (including indirect targets).
	Callees map[*cfg.Func][]*cfg.Func

	// AddressTaken lists functions whose address escapes into data or
	// non-call immediates; they are candidate targets of every CALLR.
	AddressTaken []*cfg.Func

	// predSets maps each syscall block to the sorted set of block IDs of
	// possibly-immediately-preceding syscall blocks (Entry for "none").
	predSets map[*cfg.Block][]int

	// Reachable is the set of functions reachable from _start.
	Reachable map[*cfg.Func]bool
}

// PredSet returns the predecessor block IDs for a system call site's
// block: the control-flow policy of the paper. The slice is shared; do
// not mutate.
func (g *Graph) PredSet(b *cfg.Block) []int {
	return g.predSets[b]
}

// Build analyzes the program.
func Build(p *cfg.Program) (*Graph, error) {
	g := &Graph{
		Prog:      p,
		Callees:   make(map[*cfg.Func][]*cfg.Func),
		predSets:  make(map[*cfg.Block][]int),
		Reachable: make(map[*cfg.Func]bool),
	}
	g.findAddressTaken()
	g.buildCallEdges()
	g.markReachable()
	if err := g.solveOrder(); err != nil {
		return nil, err
	}
	return g, nil
}

// findAddressTaken scans relocations: any relocation against a function
// symbol that is not the target immediate of a direct CALL/JMP/branch
// means the address escapes.
func (g *Graph) findAddressTaken() {
	p := g.Prog
	f := p.File
	textIdx := f.SectionIndex(binfmt.SecText)
	text := f.Section(binfmt.SecText)

	// Direct-control-transfer immediates: set of .text offsets whose
	// relocation feeds a CALL/JMP/branch target.
	directImm := make(map[uint32]bool)
	for _, fun := range p.Funcs {
		for _, b := range fun.Blocks {
			for _, in := range b.Insns {
				if in.Instr.HasImmTarget() {
					directImm[in.Addr+4] = true
				}
			}
		}
	}
	seen := make(map[*cfg.Func]bool)
	for _, r := range f.Relocs {
		sym := &f.Symbols[r.Sym]
		if sym.Kind != binfmt.SymFunc || !sym.Defined() {
			continue
		}
		if r.Section == textIdx && directImm[text.Addr+r.Offset] {
			continue
		}
		addr := f.Sections[sym.Section].Addr + sym.Value + uint32(r.Addend)
		fun := p.FuncAt(addr)
		if fun != nil && !seen[fun] {
			seen[fun] = true
			g.AddressTaken = append(g.AddressTaken, fun)
		}
	}
	sort.Slice(g.AddressTaken, func(i, j int) bool {
		return g.AddressTaken[i].Entry < g.AddressTaken[j].Entry
	})
}

func (g *Graph) buildCallEdges() {
	p := g.Prog
	for _, fun := range p.Funcs {
		seen := make(map[*cfg.Func]bool)
		add := func(callee *cfg.Func) {
			if callee != nil && !seen[callee] {
				seen[callee] = true
				g.Callees[fun] = append(g.Callees[fun], callee)
			}
		}
		for _, b := range fun.Blocks {
			for _, target := range b.CallTo {
				add(p.FuncAt(target))
			}
			if b.Indirect {
				for _, at := range g.AddressTaken {
					add(at)
				}
			}
		}
		sort.Slice(g.Callees[fun], func(i, j int) bool {
			return g.Callees[fun][i].Entry < g.Callees[fun][j].Entry
		})
	}
}

func (g *Graph) markReachable() {
	start := g.Prog.FuncNamed("_start")
	if start == nil && len(g.Prog.Funcs) > 0 {
		start = g.Prog.Funcs[0]
	}
	var visit func(*cfg.Func)
	visit = func(f *cfg.Func) {
		if f == nil || g.Reachable[f] {
			return
		}
		g.Reachable[f] = true
		for _, c := range g.Callees[f] {
			visit(c)
		}
	}
	visit(start)
}

// superEdges computes interprocedural successor lists over blocks.
func (g *Graph) superEdges() map[*cfg.Block][]*cfg.Block {
	p := g.Prog
	succs := make(map[*cfg.Block][]*cfg.Block, len(p.Blocks))

	// callSites[f] = fallthrough blocks of every call to f.
	callSites := make(map[*cfg.Func][]*cfg.Block)

	callTargets := func(b *cfg.Block) []*cfg.Func {
		var out []*cfg.Func
		for _, t := range b.CallTo {
			if f := p.FuncAt(t); f != nil {
				out = append(out, f)
			}
		}
		if b.Indirect {
			out = append(out, g.AddressTaken...)
		}
		return out
	}

	for _, fun := range p.Funcs {
		for _, b := range fun.Blocks {
			// exit never returns: its block has no runtime successors,
			// so edges out of it would only add infeasible orderings.
			if b.Syscall != nil && b.Syscall.NumKnown && b.Syscall.Num == sys.SysExit {
				continue
			}
			targets := callTargets(b)
			if len(targets) == 0 {
				succs[b] = append(succs[b], b.Succs...)
				continue
			}
			// Call block: edge into each callee entry; the fallthrough
			// is reached via the callee's return blocks.
			var fallthru *cfg.Block
			if len(b.Succs) > 0 {
				fallthru = b.Succs[0]
			}
			linked := false
			for _, callee := range targets {
				entry := callee.EntryBlock()
				if entry == nil {
					continue
				}
				succs[b] = append(succs[b], entry)
				linked = true
				if fallthru != nil {
					callSites[callee] = append(callSites[callee], fallthru)
				}
			}
			if !linked && fallthru != nil {
				// Callee body unknown (e.g. undecodable): stay
				// conservative by keeping the fallthrough edge.
				succs[b] = append(succs[b], fallthru)
			}
		}
	}
	// Return edges.
	for _, fun := range p.Funcs {
		sites := callSites[fun]
		if len(sites) == 0 {
			continue
		}
		for _, b := range fun.Blocks {
			if b.IsRet {
				succs[b] = append(succs[b], sites...)
			}
		}
	}
	return succs
}

// solveOrder runs the last-system-call dataflow over the supergraph.
func (g *Graph) solveOrder() error {
	p := g.Prog

	// Index syscall blocks densely for bitset representation. Lattice
	// element index 0 is Entry.
	var sysBlocks []*cfg.Block
	idxOf := make(map[*cfg.Block]int)
	for _, b := range p.Blocks {
		if b.Syscall != nil {
			idxOf[b] = len(sysBlocks) + 1
			sysBlocks = append(sysBlocks, b)
		}
	}
	nbits := len(sysBlocks) + 1
	words := (nbits + 63) / 64

	in := make(map[*cfg.Block][]uint64, len(p.Blocks))
	getIn := func(b *cfg.Block) []uint64 {
		s := in[b]
		if s == nil {
			s = make([]uint64, words)
			in[b] = s
		}
		return s
	}

	succs := g.superEdges()

	// out(b): if b is a syscall block, {b}; else in(b).
	outOf := func(b *cfg.Block, inSet []uint64) []uint64 {
		if i, ok := idxOf[b]; ok {
			o := make([]uint64, words)
			o[i/64] |= 1 << (i % 64)
			return o
		}
		return inSet
	}

	// Seed: entry block of _start holds the Entry bit.
	start := p.FuncNamed("_start")
	if start == nil && len(p.Funcs) > 0 {
		start = p.Funcs[0]
	}
	if start == nil {
		return fmt.Errorf("callgraph: no functions")
	}
	work := make([]*cfg.Block, 0, len(p.Blocks))
	inWork := make(map[*cfg.Block]bool)
	push := func(b *cfg.Block) {
		if !inWork[b] {
			inWork[b] = true
			work = append(work, b)
		}
	}
	if eb := start.EntryBlock(); eb != nil {
		getIn(eb)[Entry/64] |= 1 << (Entry % 64)
		push(eb)
	}

	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[b] = false
		o := outOf(b, getIn(b))
		for _, s := range succs[b] {
			si := getIn(s)
			changed := false
			for w := 0; w < words; w++ {
				if o[w]&^si[w] != 0 {
					si[w] |= o[w]
					changed = true
				}
			}
			if changed {
				push(s)
			}
		}
	}

	// Materialize predecessor sets for syscall blocks.
	for _, b := range sysBlocks {
		set := getIn(b)
		var ids []int
		for w := 0; w < words; w++ {
			word := set[w]
			for bit := 0; bit < 64; bit++ {
				if word&(1<<bit) == 0 {
					continue
				}
				i := w*64 + bit
				if i == Entry {
					ids = append(ids, Entry)
				} else {
					ids = append(ids, sysBlocks[i-1].ID)
				}
			}
		}
		sort.Ints(ids)
		g.predSets[b] = ids
	}
	return nil
}

// SyscallNumbers returns the sorted set of distinct system call numbers
// appearing at sites with statically known numbers, plus a list of sites
// whose numbers are unknown. This is the raw material of Table 1.
func (g *Graph) SyscallNumbers() (known []uint16, unknown []*cfg.SyscallSite) {
	seen := make(map[uint16]bool)
	for _, s := range g.Prog.SyscallSites() {
		if s.NumKnown {
			if !seen[s.Num] {
				seen[s.Num] = true
				known = append(known, s.Num)
			}
		} else {
			unknown = append(unknown, s)
		}
	}
	sort.Slice(known, func(i, j int) bool { return known[i] < known[j] })
	return known, unknown
}
