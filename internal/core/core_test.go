package core

import (
	"strings"
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/linker"
)

var testKey = []byte("0123456789abcdef")

func buildExe(t *testing.T, src string) *binfmt.File {
	t.Helper()
	obj, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

const echoSrc = `
        .text
        .global main
main:
        SUBI sp, sp, 64
        MOV r1, sp
        CALL gets
        MOV r1, sp
        CALL puts
        ADDI sp, sp, 64
        MOVI r0, 0
        RET
`

func TestSystemLifecycle(t *testing.T) {
	s, err := NewSystem(Config{Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	exe := buildExe(t, echoSrc)
	hardened, pp, rep, err := s.Install(exe, "echo")
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if !hardened.Authenticated || len(pp.Sites) == 0 || rep.Sites == 0 {
		t.Fatalf("install products: auth=%v sites=%d", hardened.Authenticated, rep.Sites)
	}
	// Direct exec.
	res, err := s.Exec(hardened, "echo", "ping\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Killed || res.Output != "ping" {
		t.Errorf("result %+v", res)
	}
	// Via the filesystem (Install registered /bin/echo).
	res2, err := s.ExecPath("/bin/echo", "pong\n")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Output != "pong" {
		t.Errorf("ExecPath output %q", res2.Output)
	}
	if res2.Verified == 0 || res2.Syscalls == 0 || res2.Cycles == 0 {
		t.Errorf("stats empty: %+v", res2)
	}
}

func TestSystemRequiresKey(t *testing.T) {
	if _, err := NewSystem(Config{}); err == nil {
		t.Error("enforcing system without key accepted")
	}
	if _, err := NewSystem(Config{Permissive: true}); err != nil {
		t.Errorf("permissive system: %v", err)
	}
}

func TestSystemUniqueIDs(t *testing.T) {
	s, err := NewSystem(Config{Key: testKey, UniqueBlockIDs: true})
	if err != nil {
		t.Fatal(err)
	}
	_, pp1, _, err := s.Install(buildExe(t, echoSrc), "a")
	if err != nil {
		t.Fatal(err)
	}
	_, pp2, _, err := s.Install(buildExe(t, echoSrc), "b")
	if err != nil {
		t.Fatal(err)
	}
	// Identical programs, distinct program IDs: block IDs must differ.
	if pp1.Sites[0].BlockID == pp2.Sites[0].BlockID {
		t.Errorf("block IDs collide across programs: %#x", pp1.Sites[0].BlockID)
	}
	if pp1.Sites[0].BlockID>>16 == 0 || pp2.Sites[0].BlockID>>16 == 0 {
		t.Error("program tags missing")
	}
}

func TestSystemAudit(t *testing.T) {
	s, err := NewSystem(Config{Key: testKey})
	if err != nil {
		t.Fatal(err)
	}
	// Unauthenticated binary on an enforcing system: killed at its
	// first call, audited.
	exe := buildExe(t, echoSrc)
	// Mark it authenticated without installing — every call is an
	// unverifiable ASYSCALL-less SYSCALL.
	exe.Authenticated = true
	res, err := s.Exec(exe, "rogue", "x\n")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed || res.Reason != kernel.KillUnauthenticated {
		t.Fatalf("rogue: %+v", res)
	}
	audit := s.Audit()
	if len(audit) != 1 || !strings.Contains(audit[0].String(), "rogue") {
		t.Errorf("audit: %v", audit)
	}
}

func TestExecPathMissing(t *testing.T) {
	s, err := NewSystem(Config{Permissive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecPath("/bin/nothere", ""); err == nil {
		t.Error("missing path accepted")
	}
	if err := s.FS.WriteFile("/bin/garbage", []byte("not a binary"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ExecPath("/bin/garbage", ""); err == nil {
		t.Error("garbage binary accepted")
	}
}

func TestOpenBSDPersonality(t *testing.T) {
	s, err := NewSystem(Config{Permissive: true, Personality: kernel.OpenBSD})
	if err != nil {
		t.Fatal(err)
	}
	obj, err := asm.Assemble("t.s", `
        .text
        .global main
main:
        MOVI r1, 0
        MOVI r2, 4096
        MOVI r3, 3
        MOVI r4, 0
        MOVI r5, 0
        CALL mmap
        MOVI r7, 0
        BGE r0, r7, .ok
        MOVI r0, 1
        RET
.ok:
        MOVI r0, 0
        RET
`)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := libc.Objects(libc.OpenBSD)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(exe, "m", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != 0 {
		t.Errorf("mmap via __syscall failed: exit %d", res.ExitCode)
	}
}

func TestStrictMode(t *testing.T) {
	s, err := NewSystem(Config{Key: testKey, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	// An untransformed binary on a strict system dies at its first call.
	res, err := s.Exec(buildExe(t, echoSrc), "plain", "x\n")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed || res.Reason != kernel.KillUnauthenticated {
		t.Fatalf("plain binary on strict system: %+v", res)
	}
	// An installed binary runs normally.
	hardened, _, _, err := s.Install(buildExe(t, echoSrc), "echo")
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s.Exec(hardened, "echo", "ok\n")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Killed || res2.Output != "ok" {
		t.Fatalf("installed binary on strict system: %+v", res2)
	}
}

func TestExecFaultingBinary(t *testing.T) {
	// A program that dereferences a wild pointer faults in the VM; Exec
	// must surface the error rather than fabricate a Result.
	s, err := NewSystem(Config{Permissive: true})
	if err != nil {
		t.Fatal(err)
	}
	exe := buildExe(t, `
        .text
        .global main
main:
        MOVI r1, 0x10
        LOAD r2, [r1+0]
        MOVI r0, 0
        RET
`)
	if _, err := s.Exec(exe, "wild", ""); err == nil {
		t.Error("faulting binary produced a Result")
	}
}
