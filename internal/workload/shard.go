// shard.go defines the sharded network service corpus: N
// single-threaded event-loop KV replicas, each owning a slice of the
// 8-slot key space, and a load-balancer client that routes every
// SET/GET to the owning replica by consistent hash. The routing is the
// authenticated-syscalls twist on plain sharding: the client's replica
// destination set is a table of MOVI-constant packed sockaddrs, so each
// route is a policy-constrained immediate pinned by the call MAC — a
// tampered route dies as a call-MAC mismatch, not a misdirected
// request. The replicas run a poll event loop over nonblocking sockets
// (fcntl O_NONBLOCK + poll readiness), parking once per wait in the
// scheduler gate instead of blocking per socket.
//
// # Determinism
//
// Every client runs the identical program, so the t-th request arriving
// on any accepted connection is byte-identical regardless of which
// client the listener accepted first. The replica serves connections
// round-robin (rounds outer, connections inner), so its cycle count and
// aggregate output are independent of accept order and worker count.
// Clients pipeline per burst — send one request to every replica that
// owns a slot in the burst, then collect the replies — which keeps at
// most one request outstanding per connection and makes the fleet
// deadlock-free by induction on bursts: a replica parked in round t of
// some connection is waiting for a request its client already sent
// before parking on replies from round t.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"asc/internal/net"
)

// NetShardSlots is the size of the sharded key space (slots 0..7, one
// digit per key, reusing the unsharded KV protocol).
const NetShardSlots = 8

// NetShardPortBase is the port of replica 0; replica i listens on
// NetShardPortBase+i.
const NetShardPortBase uint16 = 8000

// shardVnodes is how many ring positions each replica occupies.
const shardVnodes = 16

// shardHash is a splitmix64-style mixer: deterministic, seedless, and
// good enough to spread 8 slots and a handful of vnodes.
func shardHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ShardMap assigns each key slot to a replica by consistent hashing
// with bounded loads: slots walk the vnode ring clockwise from their
// hash and settle on the first replica still under the load cap
// ceil(slots/replicas). The cap guarantees balance (for replica counts
// dividing 8, exactly 8/replicas slots each); the ring guarantees that
// adding a replica moves only the slots the new replica captures,
// unlike the modulo map which reshuffles almost everything.
func ShardMap(replicas int) []int {
	if replicas < 1 {
		replicas = 1
	}
	type vnode struct {
		pos uint64
		r   int
	}
	ring := make([]vnode, 0, replicas*shardVnodes)
	for r := 0; r < replicas; r++ {
		for v := 0; v < shardVnodes; v++ {
			ring = append(ring, vnode{shardHash(1<<32 | uint64(r)<<8 | uint64(v)), r})
		}
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].pos < ring[j].pos })
	cap := (NetShardSlots + replicas - 1) / replicas
	load := make([]int, replicas)
	routes := make([]int, NetShardSlots)
	for k := range routes {
		h := shardHash(2<<32 | uint64(k))
		i := sort.Search(len(ring), func(i int) bool { return ring[i].pos >= h })
		for {
			r := ring[i%len(ring)].r
			if load[r] < cap {
				routes[k] = r
				load[r]++
				break
			}
			i++
		}
	}
	return routes
}

// ShardMapModulo is the resharding-unsafe fallback: slot k lives on
// replica k mod replicas. Trivially balanced, but growing the replica
// set remaps nearly every slot — it exists as the degenerate baseline
// (and matches ShardMap exactly for one replica).
func ShardMapModulo(replicas int) []int {
	if replicas < 1 {
		replicas = 1
	}
	routes := make([]int, NetShardSlots)
	for k := range routes {
		routes[k] = k % replicas
	}
	return routes
}

// shardOwned returns, per replica, the slots it owns in increasing
// order. Burst b of a client iteration touches owned[r][b] for every
// replica r with more than b slots.
func shardOwned(replicas int, routes []int) [][]int {
	owned := make([][]int, replicas)
	for k, r := range routes {
		owned[r] = append(owned[r], k)
	}
	return owned
}

// NetShardClientBytesPerIter is the reply bytes one LB client iteration
// collects: 8 SET acks ("OK") plus 8 GET values ("abcdefgh").
const NetShardClientBytesPerIter = NetShardSlots*2 + NetShardSlots*8

// NetShardClientOutput is the exact line each LB client prints.
func NetShardClientOutput(iters int) string {
	return fmt.Sprintf("%d bytes\n", iters*NetShardClientBytesPerIter)
}

// NetShardServerOutput is the exact aggregate line a replica owning
// `slots` key slots prints after serving `clients` connections for
// `iters` client iterations: one SET and one GET per owned slot per
// client iteration, replies of 2 and 8 bytes.
func NetShardServerOutput(clients, iters, slots int) string {
	reqs := clients * iters * 2 * slots
	bytes := clients * iters * slots * (2 + 8)
	return fmt.Sprintf("%d requests %d bytes\n", reqs, bytes)
}

// NetReplicaSource returns one event-loop KV replica: bind and listen
// on port, switch the listener nonblocking, then accept `conns`
// connections by polling the listener (one park per pending-queue
// wait), marking each accepted socket nonblocking. The serve phase
// runs `rounds` round-robin sweeps over the connections — poll the
// connection for POLLIN, receive exactly one request, answer it — so a
// parked replica always sits in poll, never in a per-socket blocking
// call. The pollfd set lives at a MOVI-constant address, making the
// poll pointer a MAC-pinned immediate.
//
// rounds must be iters*2*slotsOwned for the paired NetLBClientSource;
// the replica then drains one end-of-stream per connection and prints
// its aggregate totals.
func NetReplicaSource(port uint16, conns, rounds int) string {
	return fmt.Sprintf(`
        .text
        .global main
main:
        MOVI r1, 2
        MOVI r2, 1
        MOVI r3, 0
        CALL socket
        MOV r15, r0
        MOV r1, r15
        MOVI r2, %[1]d          ; packed AF_INET sockaddr, port %[2]d
        CALL bind
        MOV r1, r15
        MOVI r2, 64
        CALL listen
        MOV r1, r15
        MOVI r2, 4              ; F_SETFL
        MOVI r3, 2048           ; O_NONBLOCK
        CALL fcntl
        MOVI r13, 0             ; accepted so far
.accept:
        MOVI r7, %[3]d          ; connections to accept
        BEQ r13, r7, .sstart
        MOVI r7, pfd            ; poll the listener for a pending conn
        STORE [r7+0], r15
        MOVI r8, 1              ; POLLIN
        STORE [r7+4], r8
        MOVI r1, pfd
        MOVI r2, 1
        MOVI r3, 1              ; block until ready
        CALL poll
        MOV r1, r15
        MOVI r2, 0
        CALL accept
        MOV r11, r0
        MOV r1, r11
        MOVI r2, 4              ; F_SETFL
        MOVI r3, 2048           ; O_NONBLOCK
        CALL fcntl
        MOVI r7, fdtab
        MULI r8, r13, 4
        ADD r7, r7, r8
        STORE [r7+0], r11
        ADDI r13, r13, 1
        JMP .accept
.sstart:
        MOVI r15, %[4]d         ; round-robin sweeps (listener fd is dead now)
.round:
        MOVI r7, 0
        BEQ r15, r7, .drain
        MOVI r13, 0             ; connection index
.conn:
        MOVI r7, %[3]d
        BEQ r13, r7, .roundend
        MOVI r7, fdtab
        MULI r8, r13, 4
        ADD r7, r7, r8
        LOAD r11, [r7+0]
        MOVI r7, pfd            ; poll this connection for a request
        STORE [r7+0], r11
        MOVI r8, 1              ; POLLIN
        STORE [r7+4], r8
        MOVI r1, pfd
        MOVI r2, 1
        MOVI r3, 1              ; block until ready
        CALL poll
        MOV r1, r11
        MOVI r2, iobuf
        MOVI r3, 256
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        MOV r10, r0
        MOVI r7, nreqs          ; nreqs++
        LOAD r8, [r7+0]
        ADDI r8, r8, 1
        STORE [r7+0], r8
        MOVI r7, iobuf
        LOADB r8, [r7+0]
        MOVI r9, 83             ; 'S'
        BEQ r8, r9, .set
        MOVI r9, 71             ; 'G'
        BEQ r8, r9, .get
        MOVI r2, iobuf          ; default: echo the request back
        MOV r3, r10
        JMP .reply
.set:
        LOADB r8, [r7+1]
        ADDI r8, r8, -48        ; slot = digit - '0'
        ANDI r8, r8, 7
        ADDI r9, r10, -2
        MULI r7, r8, 4
        MOVI r1, kvlen
        ADD r1, r1, r7
        STORE [r1+0], r9        ; kvlen[slot] = n-2
        MULI r7, r8, 64
        MOVI r1, kv
        ADD r1, r1, r7
        MOVI r2, iobuf
        ADDI r2, r2, 2
        ADDI r3, r10, -2
        CALL memcpy             ; kv[slot] = payload
        MOVI r2, okmsg
        MOVI r3, 2
        JMP .reply
.get:
        LOADB r8, [r7+1]
        ADDI r8, r8, -48
        ANDI r8, r8, 7
        MULI r7, r8, 4
        MOVI r2, kvlen
        ADD r2, r2, r7
        LOAD r3, [r2+0]
        MULI r7, r8, 64
        MOVI r2, kv
        ADD r2, r2, r7
.reply:
        MOV r1, r11
        MOVI r4, 0
        MOVI r5, 0
        CALL sendto
        MOVI r7, nbytes         ; nbytes += reply length
        LOAD r8, [r7+0]
        ADD r8, r8, r0
        STORE [r7+0], r8
        ADDI r13, r13, 1
        JMP .conn
.roundend:
        ADDI r15, r15, -1
        JMP .round
.drain:
        MOVI r13, 0
.drconn:
        MOVI r7, %[3]d
        BEQ r13, r7, .totals
        MOVI r7, fdtab
        MULI r8, r13, 4
        ADD r7, r7, r8
        LOAD r11, [r7+0]
        MOVI r7, pfd            ; wait for the peer's close (EOF readiness)
        STORE [r7+0], r11
        MOVI r8, 1              ; POLLIN
        STORE [r7+4], r8
        MOVI r1, pfd
        MOVI r2, 1
        MOVI r3, 1
        CALL poll
        MOV r1, r11
        MOVI r2, iobuf
        MOVI r3, 256
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom           ; returns 0: end of stream
        MOV r1, r11
        CALL close
        ADDI r13, r13, 1
        JMP .drconn
.totals:
        MOVI r7, nreqs
        LOAD r1, [r7+0]
        CALL print_uint
        MOVI r1, sep
        CALL puts
        MOVI r7, nbytes
        LOAD r1, [r7+0]
        CALL print_uint
        MOVI r1, tail
        CALL puts
        MOVI r0, 0
        RET
        .rodata
okmsg:  .asciz "OK"
sep:    .asciz " requests "
tail:   .asciz " bytes\n"
        .bss
iobuf:  .space 256
pfd:    .space 8
kv:     .space 512
kvlen:  .space 32
nreqs:  .space 4
nbytes: .space 4
fdtab:  .space %[5]d
`, net.EncodeAddr(port), port, conns, rounds, conns*4)
}

// NetLBClientSource returns the load-balancer client for a fleet of
// `replicas` replicas routed by `routes` (slot -> replica, from
// ShardMap or ShardMapModulo). It connects to every replica, then runs
// `iters` iterations of a SET sweep and a GET sweep over all 8 slots.
// Each sweep is pipelined in bursts: send one request to every replica
// owning a slot in the burst, then collect that burst's replies. The
// request codegen is straight-line: each send site loads its replica's
// packed sockaddr with MOVI — the authenticated route table — and its
// payload from .rodata, so verification pins both the route and the
// request bytes.
func NetLBClientSource(iters, replicas int, routes []int) string {
	owned := shardOwned(replicas, routes)
	maxOwned := 0
	for _, o := range owned {
		if len(o) > maxOwned {
			maxOwned = len(o)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `
        .text
        .global main
main:
`)
	// Connect to every replica; fdtab[r] holds the conn fd.
	for r := 0; r < replicas; r++ {
		port := NetShardPortBase + uint16(r)
		fmt.Fprintf(&b, `
        MOVI r1, 2
        MOVI r2, 1
        MOVI r3, 0
        CALL socket
        MOV r15, r0
        MOV r1, r15
        MOVI r2, %d             ; replica %d at port %d
        CALL connect
        MOVI r7, fdtab
        STORE [r7+%d], r15
`, net.EncodeAddr(port), r, port, r*4)
	}
	fmt.Fprintf(&b, `
        MOVI r13, %d            ; iterations
        MOVI r11, 0             ; reply bytes received
.loop:
        MOVI r7, 0
        BEQ r13, r7, .done
`, iters)
	// One send block: route the payload to replica r's connection with
	// the replica's packed sockaddr as a MOVI immediate.
	send := func(r int, label string, length int) {
		port := NetShardPortBase + uint16(r)
		fmt.Fprintf(&b, `
        MOVI r7, fdtab
        LOAD r1, [r7+%d]
        MOVI r2, %s
        MOVI r3, %d
        MOVI r4, 0
        MOVI r5, %d             ; route: replica %d, port %d
        CALL sendto
`, r*4, label, length, net.EncodeAddr(port), r, port)
	}
	recv := func(r int) {
		fmt.Fprintf(&b, `
        MOVI r7, fdtab
        LOAD r1, [r7+%d]
        MOVI r2, iobuf
        MOVI r3, 256
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        ADD r11, r11, r0
`, r*4)
	}
	// SET sweep, then GET sweep, each in pipelined bursts.
	for _, phase := range []struct {
		prefix string
		length int
	}{{"s", 10}, {"g", 2}} {
		for burst := 0; burst < maxOwned; burst++ {
			for r := 0; r < replicas; r++ {
				if burst < len(owned[r]) {
					send(r, fmt.Sprintf("%s%d", phase.prefix, owned[r][burst]), phase.length)
				}
			}
			for r := 0; r < replicas; r++ {
				if burst < len(owned[r]) {
					recv(r)
				}
			}
		}
	}
	fmt.Fprintf(&b, `
        ADDI r13, r13, -1
        JMP .loop
.done:
`)
	for r := 0; r < replicas; r++ {
		fmt.Fprintf(&b, `
        MOVI r7, fdtab
        LOAD r1, [r7+%d]
        CALL close
`, r*4)
	}
	fmt.Fprintf(&b, `
        MOV r1, r11
        CALL print_uint
        MOVI r1, tail
        CALL puts
        MOVI r0, 0
        RET
        .rodata
tail:   .asciz " bytes\n"
`)
	for k := 0; k < NetShardSlots; k++ {
		fmt.Fprintf(&b, "s%d:     .asciz \"S%dabcdefgh\"\n", k, k)
		fmt.Fprintf(&b, "g%d:     .asciz \"G%d\"\n", k, k)
	}
	fmt.Fprintf(&b, `        .bss
iobuf:  .space 256
fdtab:  .space %d
`, replicas*4)
	return b.String()
}

// NetShardRounds is the serve-phase sweep count a replica owning
// `slots` slots needs for clients running `iters` iterations.
func NetShardRounds(iters, slots int) int { return iters * 2 * slots }
