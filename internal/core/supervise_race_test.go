//go:build race

package core

import (
	"sync"
	"testing"
)

// TestSuperviseCheckpointWithSiblings hammers the checkpoint path under
// the race detector: one supervised process seals checkpoints on a tight
// cadence (and warm-restarts off them) while seven siblings run through
// the worker pool on the same kernel. Checkpointing reads process and
// kernel state that the scheduler also touches; this run must be
// race-clean and must not perturb the siblings' results.
func TestSuperviseCheckpointWithSiblings(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, runAllLoopSrc), "loop")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s.Exec(exe, "loop", "")
	if err != nil {
		t.Fatal(err)
	}
	if ref.Killed || ref.Output != "done" {
		t.Fatalf("clean reference run failed: %+v", ref)
	}
	budget := ref.Cycles * 4 / 5

	const siblings = 7
	reqs := make([]RunRequest, siblings)
	for i := range reqs {
		reqs[i] = RunRequest{Exe: exe, Name: "sib"}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var stats *SuperviseStats
	var supErr error
	go func() {
		defer wg.Done()
		stats, supErr = s.Supervise(exe, "loop", "", SuperviseConfig{
			MaxRestarts:     8,
			BackoffBase:     100,
			MaxCycles:       budget,
			CheckpointEvery: budget / 8,
		})
	}()
	res, runErr := s.RunAll(reqs, 4)
	wg.Wait()

	if supErr != nil {
		t.Fatalf("Supervise: %v", supErr)
	}
	if runErr != nil {
		t.Fatalf("RunAll: %v", runErr)
	}
	if stats.GaveUp || stats.Final.Output != "done" {
		t.Fatalf("supervised process did not recover: %+v", stats)
	}
	if stats.Checkpoints == 0 || stats.WarmRestarts == 0 {
		t.Errorf("checkpoints=%d warm=%d, want both > 0", stats.Checkpoints, stats.WarmRestarts)
	}
	for i, r := range res {
		if r.Err != nil || r.Killed || r.Output != "done" {
			t.Errorf("sibling %d perturbed: err=%v killed=%v output=%q", i, r.Err, r.Killed, r.Output)
		}
		if r.Cycles != ref.Cycles || r.Verified != ref.Verified {
			t.Errorf("sibling %d diverged from quiet baseline: cycles %d/%d verified %d/%d",
				i, r.Cycles, ref.Cycles, r.Verified, ref.Verified)
		}
	}
}
