// ascdump prints a human-readable listing of a SELF binary: sections,
// symbols, disassembly, and (for authenticated executables) the decoded
// policy attached to each authenticated call site.
//
// Usage: ascdump [-sections] [-symbols] [-disasm] [-policies] file
//
// With no selection flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"asc"
	"asc/internal/dump"
)

func main() {
	sections := flag.Bool("sections", false, "print the section table")
	symbols := flag.Bool("symbols", false, "print the symbol table")
	disasm := flag.Bool("disasm", false, "print the disassembly")
	policies := flag.Bool("policies", false, "annotate authenticated calls with their policies")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ascdump [-sections] [-symbols] [-disasm] [-policies] file")
		os.Exit(2)
	}
	opts := dump.Options{Sections: *sections, Symbols: *symbols, Disasm: *disasm, Policies: *policies}
	if !*sections && !*symbols && !*disasm && !*policies {
		opts = dump.All
	}
	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	f, err := asc.ReadBinary(b)
	if err != nil {
		fatal(err)
	}
	if err := dump.Dump(os.Stdout, f, opts); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascdump:", err)
	os.Exit(1)
}
