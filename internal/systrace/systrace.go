// Package systrace implements the Systrace-style baseline monitor the
// paper compares against (Section 4.2): policies are produced by
// *training* — tracing sample runs of the program — optionally generalized
// with the fsread/fswrite aliases used by the published Project Hairy
// Eyeball policies, and enforced by a user-space policy daemon whose
// per-call cost includes two context switches (Section 2.3).
//
// Training, unlike the installer's conservative static analysis, only
// observes the paths the sample inputs exercise: system calls on rarely
// taken paths are missing from the policy and cause false alarms — the
// effect Tables 1 and 2 quantify.
package systrace

import (
	"fmt"
	"sort"

	"asc/internal/binfmt"
	"asc/internal/kernel"
	"asc/internal/sys"
	"asc/internal/vfs"
)

// Policy is a trained Systrace-style policy.
type Policy struct {
	Program string
	// Allowed is the set of concrete system call names permitted.
	Allowed map[string]bool
	// Aliases holds generic permissions ("fsread", "fswrite") that each
	// expand to a family of calls.
	Aliases []string
}

// Permits reports whether the policy allows the named call, expanding
// aliases.
func (p *Policy) Permits(name string) bool {
	if p.Allowed[name] {
		return true
	}
	for _, a := range p.Aliases {
		var family []string
		switch a {
		case "fsread":
			family = sys.FSRead
		case "fswrite":
			family = sys.FSWrite
		}
		for _, f := range family {
			if f == name {
				return true
			}
		}
	}
	return false
}

// Names returns the sorted concrete names in the policy (aliases not
// expanded).
func (p *Policy) Names() []string {
	out := make([]string, 0, len(p.Allowed))
	for n := range p.Allowed {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ExpandedNames returns the sorted set of all permitted call names,
// including alias expansions.
func (p *Policy) ExpandedNames() []string {
	seen := make(map[string]bool, len(p.Allowed))
	for n := range p.Allowed {
		seen[n] = true
	}
	for _, a := range p.Aliases {
		var family []string
		switch a {
		case "fsread":
			family = sys.FSRead
		case "fswrite":
			family = sys.FSWrite
		}
		for _, f := range family {
			seen[f] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Input is one training run: stdin contents plus optional filesystem
// preparation.
type Input struct {
	Stdin string
	Setup func(*vfs.FS) error
}

// TrainConfig configures training runs.
type TrainConfig struct {
	Personality kernel.Personality
	MaxCycles   uint64
}

// Train executes the program on each input under a permissive tracing
// kernel and returns the observed-call policy.
func Train(exe *binfmt.File, program string, inputs []Input, cfg TrainConfig) (*Policy, error) {
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = 500_000_000
	}
	if cfg.Personality == 0 {
		cfg.Personality = kernel.Linux
	}
	pol := &Policy{Program: program, Allowed: make(map[string]bool)}
	if len(inputs) == 0 {
		inputs = []Input{{}}
	}
	for i, in := range inputs {
		fs := vfs.New()
		for _, d := range []string{"/tmp", "/etc", "/bin", "/data"} {
			if err := fs.MkdirAll(d, 0o755); err != nil {
				return nil, fmt.Errorf("systrace: setup: %w", err)
			}
		}
		if in.Setup != nil {
			if err := in.Setup(fs); err != nil {
				return nil, fmt.Errorf("systrace: input %d setup: %w", i, err)
			}
		}
		k, err := kernel.New(fs, nil, kernel.WithMode(kernel.Permissive), kernel.WithPersonality(cfg.Personality))
		if err != nil {
			return nil, err
		}
		p, err := k.Spawn(exe, program)
		if err != nil {
			return nil, err
		}
		p.Stdin = []byte(in.Stdin)
		p.DoTrace = true
		if err := k.Run(p, cfg.MaxCycles); err != nil {
			return nil, fmt.Errorf("systrace: training run %d: %w", i, err)
		}
		for _, e := range p.Trace {
			name := sys.Name(e.Num)
			// The tracer, like Systrace, records the call actually
			// dispatched: an OpenBSD __syscall(mmap, ...) is logged as
			// mmap (the Table 2 mmap row).
			if e.Num == sys.SysIndirect && cfg.Personality == kernel.OpenBSD {
				name = sys.Name(uint16(e.Args[0]))
			}
			pol.Allowed[name] = true
		}
	}
	return pol, nil
}

// GeneralizeFS rewrites the policy in the style of the published Project
// Hairy Eyeball policies: concrete file system calls are replaced by the
// generic fsread/fswrite permissions (which is how unneeded calls such as
// mkdir/rmdir/unlink enter trained policies — the Table 2 fswrite rows).
func (p *Policy) GeneralizeFS() {
	replaced := false
	for _, n := range sys.FSRead {
		if p.Allowed[n] {
			delete(p.Allowed, n)
			replaced = true
		}
	}
	if replaced {
		p.Aliases = append(p.Aliases, "fsread")
	}
	replaced = false
	for _, n := range sys.FSWrite {
		if p.Allowed[n] {
			delete(p.Allowed, n)
			replaced = true
		}
	}
	if replaced {
		p.Aliases = append(p.Aliases, "fswrite")
	}
}

// DaemonMonitor returns a kernel monitor hook modeling Systrace's
// user-space policy daemon: every checked call pays two context switches
// plus a policy lookup (Section 2.3), and calls outside the policy are
// denied.
func (p *Policy) DaemonMonitor(costs kernel.CostModel) func(*kernel.Process, uint16, uint32) (uint64, bool) {
	return func(_ *kernel.Process, num uint16, _ uint32) (uint64, bool) {
		name := sys.Name(num)
		return 2*costs.DaemonSwitch + 200, p.Permits(name)
	}
}

// InKernelMonitor returns a monitor hook modeling a fully in-kernel
// policy table (the heavyweight-kernel alternative of Section 1): a
// cheap hash lookup per call, no context switches.
func (p *Policy) InKernelMonitor() func(*kernel.Process, uint16, uint32) (uint64, bool) {
	return func(_ *kernel.Process, num uint16, _ uint32) (uint64, bool) {
		return 120, p.Permits(sys.Name(num))
	}
}
