package linker

import (
	"errors"
	"strings"
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/isa"
	"asc/internal/libc"
	"asc/internal/sys"
	"asc/internal/vm"
)

func assemble(t *testing.T, name, src string) *binfmt.File {
	t.Helper()
	f, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatalf("Assemble(%s): %v", name, err)
	}
	return f
}

func libObjects(t *testing.T) []*binfmt.File {
	t.Helper()
	objs, err := libc.Objects(libc.Linux)
	if err != nil {
		t.Fatalf("libc.Objects: %v", err)
	}
	return objs
}

func TestArchiveSemantics(t *testing.T) {
	main := assemble(t, "main.s", `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "hello\n"
`)
	exe, err := Link([]*binfmt.File{main}, libObjects(t))
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	// Pulled: _start, main, puts, strlen, write (_start exits inline).
	for _, want := range []string{"_start", "main", "puts", "strlen", "write"} {
		if s := exe.Symbol(want); s == nil || !s.Defined() {
			t.Errorf("symbol %q missing from linked executable", want)
		}
	}
	// NOT pulled: open, socket, and the other ~80 stubs.
	for _, notWant := range []string{"open", "socket", "mkdir", "gets", "malloc"} {
		if s := exe.Symbol(notWant); s != nil {
			t.Errorf("symbol %q linked in but unreferenced", notWant)
		}
	}
	if !exe.Relocatable {
		t.Error("linked executable must stay relocatable for the installer")
	}
	if exe.Entry == 0 {
		t.Error("entry not set")
	}
}

func TestUndefinedSymbol(t *testing.T) {
	main := assemble(t, "main.s", `
        .text
        .global main
main:
        CALL no_such_function
        RET
`)
	_, err := Link([]*binfmt.File{main}, libObjects(t))
	if !errors.Is(err, ErrUndefined) {
		t.Fatalf("Link = %v, want ErrUndefined", err)
	}
	if !strings.Contains(err.Error(), "no_such_function") {
		t.Errorf("error does not name the symbol: %v", err)
	}
}

func TestDuplicateDefinition(t *testing.T) {
	a := assemble(t, "a.s", ".text\n.global main\nmain:\nRET\n")
	b := assemble(t, "b.s", ".text\n.global main\nmain:\nRET\n")
	start := assemble(t, "s.s", ".text\n.global _start\n_start:\nCALL main\nRET\n")
	_, err := Link([]*binfmt.File{start, a, b}, nil)
	if err == nil || !strings.Contains(err.Error(), "multiple definitions") {
		t.Fatalf("Link = %v, want duplicate definition error", err)
	}
}

func TestNoStart(t *testing.T) {
	a := assemble(t, "a.s", ".text\n.global main\nmain:\nRET\n")
	_, err := Link([]*binfmt.File{a}, nil)
	if err == nil || !strings.Contains(err.Error(), "_start") {
		t.Fatalf("Link = %v, want missing _start error", err)
	}
}

// miniKernel implements just write/exit so linked programs can run.
type miniKernel struct {
	out    []byte
	exited bool
	code   uint32
}

func (k *miniKernel) Trap(c *vm.CPU, site uint32, authed bool) (uint32, bool, error) {
	num := uint16(c.Regs[isa.R0])
	switch num {
	case sys.SysExit:
		k.exited = true
		k.code = c.Regs[isa.R1]
		return 0, true, nil
	case sys.SysWrite:
		buf, n := c.Regs[isa.R2], c.Regs[isa.R3]
		b, err := c.Mem.KernelRead(buf, n)
		if err != nil {
			return 0, false, err
		}
		k.out = append(k.out, b...)
		return n, false, nil
	default:
		return ^uint32(0), false, nil
	}
}

func runExe(t *testing.T, exe *binfmt.File) *miniKernel {
	t.Helper()
	base, img, err := exe.Image()
	if err != nil {
		t.Fatalf("Image: %v", err)
	}
	mem := vm.NewMemory(binfmt.TextBase, 1<<20)
	if err := mem.KernelWrite(base, img); err != nil {
		t.Fatalf("load: %v", err)
	}
	for _, s := range exe.Sections {
		if s.Size == 0 {
			continue
		}
		mem.Map(vm.Segment{Name: s.Name, Start: s.Addr, End: s.End(), Perms: s.Flags})
	}
	top := mem.Limit()
	mem.Map(vm.Segment{Name: "stack", Start: top - 64*1024, End: top, Perms: vm.PermRead | vm.PermWrite | vm.PermExec})
	k := &miniKernel{}
	c := vm.New(mem, k)
	c.PC = exe.Entry
	c.Regs[isa.SP] = top
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return k
}

func TestHelloWorldEndToEnd(t *testing.T) {
	main := assemble(t, "main.s", `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 7
        RET
        .rodata
msg:    .asciz "hello, world\n"
`)
	exe, err := Link([]*binfmt.File{main}, libObjects(t))
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	k := runExe(t, exe)
	if string(k.out) != "hello, world\n" {
		t.Errorf("output = %q", k.out)
	}
	if !k.exited || k.code != 7 {
		t.Errorf("exit: %v code=%d, want exit(7)", k.exited, k.code)
	}
}

func TestPrintUintEndToEnd(t *testing.T) {
	main := assemble(t, "main.s", `
        .text
        .global main
main:
        MOVI r1, 40961
        CALL print_uint
        MOVI r1, 0
        CALL print_uint
        MOVI r0, 0
        RET
`)
	exe, err := Link([]*binfmt.File{main}, libObjects(t))
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	k := runExe(t, exe)
	if string(k.out) != "409610" {
		t.Errorf("output = %q, want 409610", k.out)
	}
}

func TestOpenBSDLibcLinks(t *testing.T) {
	objs, err := libc.Objects(libc.OpenBSD)
	if err != nil {
		t.Fatalf("libc.Objects(OpenBSD): %v", err)
	}
	main := assemble(t, "main.s", `
        .text
        .global main
main:
        MOVI r1, 0
        MOVI r2, 64
        MOVI r3, 1
        MOVI r4, 2
        MOVI r5, 0
        CALL mmap
        MOVI r1, 3
        CALL close
        MOVI r0, 0
        RET
`)
	exe, err := Link([]*binfmt.File{main}, objs)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	// The OpenBSD mmap stub must reference the indirect syscall.
	if s := exe.Symbol("mmap"); s == nil {
		t.Error("mmap not linked")
	}
	// Run it: close's hidden SYSCALL must still execute correctly.
	k := runExe(t, exe)
	if !k.exited {
		t.Error("program did not exit")
	}
}

func TestChunkAlignment(t *testing.T) {
	exe, err := Link([]*binfmt.File{assemble(t, "m.s", `
        .text
        .global _start
_start:
        RET
`)}, libObjects(t))
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	text := exe.Section(binfmt.SecText)
	if text.Addr%binfmt.SectionAlign != 0 {
		t.Errorf(".text addr %#x unaligned", text.Addr)
	}
	// All function symbols must sit at 8-byte instruction boundaries.
	for _, s := range exe.Symbols {
		if s.Kind == binfmt.SymFunc && s.Defined() && exe.Sections[s.Section].Name == binfmt.SecText {
			if addr, _ := exe.SymbolAddr(s.Name); addr%isa.InstrSize != 0 && s.Name != "close_impl" {
				t.Errorf("function %s at unaligned %#x", s.Name, addr)
			}
		}
	}
}
