package systrace

// Trace rendering. Systrace's ability to express useful socket policy
// rests on seeing decoded calls ("bind to port 7"), not raw argument
// words; the same decoding makes kernel traces legible in tests and
// tooling. Socket-family calls render their packed sockaddr arguments
// as address:port, everything else falls back to the generic form.

import (
	"fmt"
	"strings"

	"asc/internal/kernel"
	anet "asc/internal/net"
	"asc/internal/sys"
)

// formatAddr renders a packed by-value sockaddr (family in the top
// byte, port in the low half) as loopback address:port; malformed
// encodings render as raw hex so tampering stays visible in traces.
func formatAddr(packed uint32) string {
	sa, ok := anet.DecodeAddr(packed)
	if !ok {
		return fmt.Sprintf("addr(%#x)", packed)
	}
	return fmt.Sprintf("127.0.0.1:%d", sa.Port)
}

// FormatCall renders one executed system call. Socket-family calls
// decode names and address/port arguments; other calls print their
// declared arguments as numbers.
func FormatCall(e kernel.TraceEntry) string {
	name := sys.Name(e.Num)
	var args string
	switch e.Num {
	case sys.SysSocket, sys.SysSocketpair:
		args = fmt.Sprintf("domain=%d, type=%d, proto=%d", e.Args[0], e.Args[1], e.Args[2])
	case sys.SysBind, sys.SysConnect:
		args = fmt.Sprintf("fd=%d, %s", e.Args[0], formatAddr(e.Args[1]))
	case sys.SysListen:
		args = fmt.Sprintf("fd=%d, backlog=%d", e.Args[0], e.Args[1])
	case sys.SysAccept, sys.SysGetsockname, sys.SysGetpeername, sys.SysClose:
		args = fmt.Sprintf("fd=%d", e.Args[0])
	case sys.SysShutdown:
		args = fmt.Sprintf("fd=%d, how=%d", e.Args[0], e.Args[1])
	case sys.SysSendto:
		args = fmt.Sprintf("fd=%d, len=%d, %s", e.Args[0], e.Args[2], formatAddr(e.Args[4]))
	case sys.SysRecvfrom:
		args = fmt.Sprintf("fd=%d, cap=%d", e.Args[0], e.Args[2])
	case sys.SysSetsockopt, sys.SysGetsockopt:
		args = fmt.Sprintf("fd=%d, level=%d, opt=%d", e.Args[0], e.Args[1], e.Args[2])
	case sys.SysPoll:
		args = fmt.Sprintf("fds=%#x, nfds=%d, timeout=%d", e.Args[0], e.Args[1], int32(e.Args[2]))
	case sys.SysSelect:
		args = fmt.Sprintf("nfds=%d, readfds=%#x, writefds=%#x, exceptfds=%#x, timeout=%#x",
			e.Args[0], e.Args[1], e.Args[2], e.Args[3], e.Args[4])
	case sys.SysMmap:
		args = fmt.Sprintf("addr=%#x, len=%d, %s, flags=%#x, fd=%d",
			e.Args[0], e.Args[1], formatProt(e.Args[2]), e.Args[3], int32(e.Args[4]))
		// mmap returns an address, not a count; render it in hex.
		return fmt.Sprintf("%s(%s) = %s", name, args, formatMmapRet(e.Ret))
	case sys.SysMunmap:
		args = fmt.Sprintf("addr=%#x, len=%d", e.Args[0], e.Args[1])
	case sys.SysMprotect:
		args = fmt.Sprintf("addr=%#x, len=%d, %s", e.Args[0], e.Args[1], formatProt(e.Args[2]))
	case sys.SysFcntl:
		switch e.Args[1] {
		case kernel.FGetFL:
			args = fmt.Sprintf("fd=%d, F_GETFL", e.Args[0])
		case kernel.FSetFL:
			args = fmt.Sprintf("fd=%d, F_SETFL, %s", e.Args[0], formatFlags(e.Args[2]))
		default:
			args = fmt.Sprintf("fd=%d, cmd=%d, arg=%d", e.Args[0], e.Args[1], e.Args[2])
		}
	default:
		sig, ok := sys.Lookup(e.Num)
		n := sys.MaxArgs
		if ok {
			n = sig.NArgs()
		}
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			parts = append(parts, fmt.Sprintf("%d", e.Args[i]))
		}
		args = strings.Join(parts, ", ")
	}
	return fmt.Sprintf("%s(%s) = %s", name, args, formatRet(e.Ret))
}

// formatFlags renders an fcntl status-flag word, naming O_NONBLOCK —
// the flag the nonblocking-socket discipline rests on.
func formatFlags(fl uint32) string {
	switch {
	case fl == kernel.ONonblock:
		return "O_NONBLOCK"
	case fl&kernel.ONonblock != 0:
		return fmt.Sprintf("O_NONBLOCK|%#x", fl&^uint32(kernel.ONonblock))
	case fl == 0:
		return "0"
	}
	return fmt.Sprintf("%#x", fl)
}

// formatProt renders an mmap/mprotect protection word symbolically;
// unknown bits render in hex so a tampered immediate stays visible.
func formatProt(prot uint32) string {
	if prot == sys.ProtNone {
		return "PROT_NONE"
	}
	var parts []string
	if prot&sys.ProtRead != 0 {
		parts = append(parts, "PROT_READ")
	}
	if prot&sys.ProtWrite != 0 {
		parts = append(parts, "PROT_WRITE")
	}
	if prot&sys.ProtExec != 0 {
		parts = append(parts, "PROT_EXEC")
	}
	if rest := prot &^ uint32(sys.ProtRead|sys.ProtWrite|sys.ProtExec); rest != 0 {
		parts = append(parts, fmt.Sprintf("%#x", rest))
	}
	return strings.Join(parts, "|")
}

// formatMmapRet renders an mmap result: negative errnos as decimal like
// every other call, mapped addresses in hex.
func formatMmapRet(ret uint32) string {
	if int32(ret) < 0 {
		return fmt.Sprintf("%d", int32(ret))
	}
	return fmt.Sprintf("%#x", ret)
}

// formatRet renders a return value. EAGAIN renders symbolically so the
// nonblocking retry discipline reads as what it is, not a bare -11.
func formatRet(ret uint32) string {
	if int32(ret) == -int32(sys.EAGAIN) {
		return "EAGAIN"
	}
	return fmt.Sprintf("%d", int32(ret))
}

// FormatTrace renders a full trace, one call per line.
func FormatTrace(t []kernel.TraceEntry) string {
	var b strings.Builder
	for _, e := range t {
		b.WriteString(FormatCall(e))
		b.WriteByte('\n')
	}
	return b.String()
}
