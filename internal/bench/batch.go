// batch.go measures the group-commit fast path: an 8-process getpid
// fleet swept across burst sizes and cache modes. Per-call costs come
// from differencing two loop lengths (startup cancels out) over
// deterministic cycle counts, so BENCH_batch.json is byte-stable. The
// driver enforces the amortization contract — cost per call must fall
// strictly as the burst grows — so a regression fails the bench run
// itself, not just a downstream guard.
package bench

import (
	"fmt"

	"asc/internal/kernel"
)

// BatchBursts is the group-commit burst-size sweep.
var BatchBursts = []int{1, 2, 4, 8, 16}

// batchModes maps row labels to kernel cache configurations. Order is
// fixed: the JSON artifact must be byte-stable.
var batchModes = []struct {
	Name string
	Mode kernel.CacheMode
}{
	{"off", kernel.CacheOff},
	{"per-process", kernel.CachePerProcess},
	{"shared", kernel.CacheShared},
}

// BatchPoint is one burst size's per-call cost under one cache mode.
type BatchPoint struct {
	Burst         int
	CyclesPerCall float64
}

// BatchRow is one cache mode's burst sweep.
type BatchRow struct {
	Mode   string
	Points []BatchPoint
	// Hits/Misses/Shares are the fleet-wide cache counters of the
	// longest run at the largest burst (identical across bursts:
	// batching changes the control-flow checker, not the cache).
	Hits   uint64
	Misses uint64
	Shares uint64
}

// BatchData is the full burst × cache-mode sweep.
type BatchData struct {
	Procs int
	Rows  []BatchRow
}

// batchLoopSrc is a pure getpid loop: no file I/O, so the fleet needs
// nothing from the filesystem and every trap exercises the fast path.
func batchLoopSrc(n int) string {
	return fmt.Sprintf(`        .text
        .global main
main:
        PUSH fp
        MOV fp, sp
        MOVI r12, %d
.loop:
        CALL getpid
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        POP fp
        MOVI r0, 0
        RET
`, n)
}

// runBatchFleet runs procs copies of the n-iteration loop serially on
// one kernel (serial order keeps who-misses/who-adopts deterministic in
// the shared mode) and returns the fleet cycle total plus the kernel's
// aggregate cache counters.
func runBatchFleet(key []byte, procs, n int, mode kernel.CacheMode, burst int) (uint64, kernel.CacheStats, error) {
	name := fmt.Sprintf("batch-%d", n)
	_, auth, err := buildPair(name, batchLoopSrc(n), key)
	if err != nil {
		return 0, kernel.CacheStats{}, err
	}
	k, err := newBenchKernel(key, kernel.Enforce,
		kernel.WithCacheMode(mode), kernel.WithBatchVerify(burst))
	if err != nil {
		return 0, kernel.CacheStats{}, err
	}
	var total uint64
	for i := 0; i < procs; i++ {
		p, err := runOnce(k, auth, name, "")
		if err != nil {
			return 0, kernel.CacheStats{}, err
		}
		total += p.CPU.Cycles
	}
	return total, k.CacheStats(), nil
}

// Batch runs the burst × cache-mode sweep and validates the
// amortization contract.
func Batch(key []byte) (*BatchData, error) {
	const procs = 8
	const n1, n2 = 100, 1100
	out := &BatchData{Procs: procs}
	for _, m := range batchModes {
		row := BatchRow{Mode: m.Name}
		for _, burst := range BatchBursts {
			c1, _, err := runBatchFleet(key, procs, n1, m.Mode, burst)
			if err != nil {
				return nil, err
			}
			c2, stats, err := runBatchFleet(key, procs, n2, m.Mode, burst)
			if err != nil {
				return nil, err
			}
			row.Points = append(row.Points, BatchPoint{
				Burst:         burst,
				CyclesPerCall: float64(c2-c1) / float64(procs*(n2-n1)),
			})
			row.Hits, row.Misses, row.Shares = stats.Hits, stats.Misses, stats.Shares
		}
		for i := 1; i < len(row.Points); i++ {
			prev, cur := row.Points[i-1], row.Points[i]
			if cur.CyclesPerCall >= prev.CyclesPerCall {
				return nil, fmt.Errorf("bench: batch %s: burst %d costs %.1f cycles/call, burst %d costs %.1f — amortization regressed",
					m.Name, cur.Burst, cur.CyclesPerCall, prev.Burst, prev.CyclesPerCall)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render prints the sweep.
func (t *BatchData) Render() string {
	header := []string{"Cache mode"}
	for _, b := range BatchBursts {
		header = append(header, fmt.Sprintf("burst=%d", b))
	}
	header = append(header, "hits/misses/shares")
	var rows [][]string
	for _, r := range t.Rows {
		row := []string{r.Mode}
		for _, p := range r.Points {
			row = append(row, fmt.Sprintf("%.1f", p.CyclesPerCall))
		}
		row = append(row, fmt.Sprintf("%d/%d/%d", r.Hits, r.Misses, r.Shares))
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Group-commit sweep: cycles/call, %d-process getpid fleet", t.Procs)
	return renderTable(title, header, rows)
}
