// ascattack runs the paper's attack experiment battery (Section 4.1 and
// the Section 5.5 Frankenstein attack) against an enforcing kernel and
// prints each verdict.
//
// Usage: ascattack [-key passphrase]
package main

import (
	"flag"
	"fmt"
	"os"

	"asc"
	"asc/internal/attack"
)

func main() {
	key := flag.String("key", "attack-demo", "MAC key passphrase")
	flag.Parse()

	lab, err := attack.NewLab(asc.NewKey(*key))
	if err != nil {
		fatal(err)
	}
	outcomes, err := lab.Battery()
	if err != nil {
		fatal(err)
	}
	fmt.Println("Attack experiments (Sections 4.1 and 5.5):")
	blocked := 0
	for _, o := range outcomes {
		fmt.Printf("  %s\n", o)
		if o.Detail != "" {
			fmt.Printf("      %s\n", o.Detail)
		}
		if o.Blocked {
			blocked++
		}
	}
	fmt.Printf("%d/%d experiments blocked by the monitor\n", blocked, len(outcomes))
	fmt.Println("(expected allowed: the benign baseline and the Frankenstein splice without unique IDs)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascattack:", err)
	os.Exit(1)
}
