// audit.go implements the kernel's bounded violation log: structured
// Violation records in a fixed-capacity ring. Long fault-injection
// campaigns and Deny/Audit-mode processes can generate violations at
// system-call rate; the ring bounds kernel memory while counting every
// record it had to drop.
package kernel

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Action is the enforcement decision recorded with a violation.
type Action string

// Enforcement actions.
const (
	ActionKill  Action = "kill"
	ActionDeny  Action = "deny"
	ActionAudit Action = "audit"
)

// Violation is one structured monitor decision: a system call that failed
// verification, together with the action the kernel took.
type Violation struct {
	Seq     uint64 // global sequence number (monotonic per kernel)
	PID     int
	Program string
	Num     uint16
	Name    string
	Site    uint32
	Reason  KillReason
	Action  Action
}

// AuditEntry is the historical name for a Violation record.
type AuditEntry = Violation

func (a Violation) String() string {
	act := a.Action
	if act == "" {
		act = ActionKill
	}
	return fmt.Sprintf("pid %d (%s): %s at %#x: %s [%s]", a.PID, a.Program, a.Name, a.Site, string(a.Reason), act)
}

// DefaultAuditCapacity is the violation ring's capacity unless overridden
// with WithAuditCapacity.
const DefaultAuditCapacity = 1024

// AuditRing is a fixed-capacity ring of Violation records. Appends past
// capacity overwrite the oldest entry and bump the dropped counter.
//
// The ring is a multi-producer structure: under the SMP scheduler every
// worker goroutine may record violations against one kernel. Appends
// take a short mutex over the slot array (violations are orders of
// magnitude rarer than system calls, so the lock is never hot), while
// the monotone counters — total appended and dropped — are atomics that
// monitors can read lock-free while the fleet runs.
type AuditRing struct {
	mu      sync.Mutex
	entries []Violation
	start   int // index of the oldest entry
	cap     int

	seq     atomic.Uint64 // total records ever appended
	dropped atomic.Uint64
}

// init lazily sizes the ring (the zero value uses DefaultAuditCapacity);
// the caller must hold mu.
func (r *AuditRing) init() {
	if r.cap == 0 {
		r.cap = DefaultAuditCapacity
	}
}

// SetCapacity resizes the ring. Growing preserves every held record;
// shrinking keeps the newest n and counts the evicted ones as dropped,
// exactly as if later appends had overwritten them.
func (r *AuditRing) SetCapacity(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 1 {
		n = 1
	}
	if len(r.entries) > n {
		held := make([]Violation, 0, len(r.entries))
		held = append(held, r.entries[r.start:]...)
		held = append(held, r.entries[:r.start]...)
		r.dropped.Add(uint64(len(held) - n))
		r.entries = held[len(held)-n:]
		r.start = 0
	} else if r.start != 0 {
		// Unwrap so future appends grow contiguously up to the new cap.
		held := make([]Violation, 0, n)
		held = append(held, r.entries[r.start:]...)
		held = append(held, r.entries[:r.start]...)
		r.entries = held
		r.start = 0
	}
	r.cap = n
}

// Append records a violation, assigning its sequence number. Safe for
// concurrent use.
func (r *AuditRing) Append(v Violation) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.init()
	v.Seq = r.seq.Add(1) - 1
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, v)
		return
	}
	r.entries[r.start] = v
	r.start = (r.start + 1) % len(r.entries)
	r.dropped.Add(1)
}

// Len returns the number of records currently held.
func (r *AuditRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Total returns the number of records ever appended (lock-free).
func (r *AuditRing) Total() uint64 { return r.seq.Load() }

// Dropped returns the number of records overwritten by later appends
// (lock-free).
func (r *AuditRing) Dropped() uint64 { return r.dropped.Load() }

// Entries returns the held records, oldest first.
func (r *AuditRing) Entries() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Violation, 0, len(r.entries))
	out = append(out, r.entries[r.start:]...)
	out = append(out, r.entries[:r.start]...)
	return out
}

// Last returns the most recent record, if any.
func (r *AuditRing) Last() (Violation, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == 0 {
		return Violation{}, false
	}
	idx := r.start - 1
	if idx < 0 {
		idx += len(r.entries)
	}
	return r.entries[idx], true
}

func (r *AuditRing) String() string {
	ents := r.Entries()
	var b strings.Builder
	fmt.Fprintf(&b, "audit ring (%d held, %d total, %d dropped):", len(ents), r.Total(), r.Dropped())
	for _, v := range ents {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}
