// standby.go replicates the control plane. A warm standby tails the
// director's sealed WAL; when director heartbeats (KindBeat records)
// stop arriving for MissThreshold×HeartbeatEvery ticks, it takes over:
// the log is re-validated end to end from disk (recovering a torn tail,
// refusing tamper and stale snapshots), the fence and placement table
// are rebuilt by replaying every decision, the term is bumped with a
// takeover record — fencing out the deposed director's log handle — and
// the fleet resumes. Processes whose nodes survived are re-attached
// live (the data plane never died, only its coordinator); processes
// caught mid-migration or on dead nodes re-place warm from the
// persistent checkpoint store. The single-director invariants hold
// because takeover is replay, not guesswork: the WAL records every
// fence transition before its effect, so the shadow fence equals the
// fence the primary would have had.
package cluster

import (
	"errors"
	"fmt"

	"asc/internal/core"
	"asc/internal/durable"
	"asc/internal/kernel"
	"asc/internal/vfs"
)

// ErrDirectorLost reports a director crash with no standby configured:
// the fleet's processes keep their durable state, but nothing remains
// to drive them.
var ErrDirectorLost = errors.New("cluster: director lost and no standby configured")

// Standby is the warm replica: a verifying tailer over the director's
// WAL plus the missed-beat takeover rule.
type Standby struct {
	tailer   *durable.Tailer
	hb, miss int
	lastSeen int // virtual tick of the newest record tailed
}

// NewStandby attaches a standby to the WAL under dir.
func NewStandby(fs *vfs.FS, dir string, key []byte, heartbeatEvery, missThreshold int) (*Standby, error) {
	t, err := durable.NewTailer(fs, dir, key)
	if err != nil {
		return nil, err
	}
	return &Standby{tailer: t, hb: heartbeatEvery, miss: missThreshold}, nil
}

// Check tails newly sealed records and reports whether the director has
// missed enough beats that the standby must take over. Any record is
// evidence of liveness; KindBeat guarantees evidence at heartbeat
// cadence even when the fleet is idle.
func (s *Standby) Check(now int) bool {
	recs, err := s.tailer.Tail()
	if err == nil {
		for _, r := range recs {
			if int(r.Tick) > s.lastSeen {
				s.lastSeen = int(r.Tick)
			}
		}
	}
	return now-s.lastSeen > s.hb*s.miss
}

// HAConfig parameterizes a replicated control plane.
type HAConfig struct {
	// Cluster is the fleet configuration. DurableDir is required; the
	// OnTick hook must be unset (use HAConfig.OnTick — it sees the HA
	// wrapper, which outlives any one director).
	Cluster Config
	// Standby attaches a warm standby that takes over on missed
	// director heartbeats. Without it, a director crash loses the
	// fleet (ErrDirectorLost per process).
	Standby bool
	// OnTick runs at the start of every virtual tick while a director
	// is alive — the injection point for node crashes, migrations, and
	// director crashes (h.CrashPrimary, MigrateOpts.CrashDirector).
	OnTick func(h *HA, tick int)
}

// HAReport is a fleet report plus control-plane recovery accounting.
type HAReport struct {
	Fleet *FleetReport

	// DirectorLost: the primary crashed with no standby.
	DirectorLost bool
	// CrashTick/TakeoverTick are -1 when the event never happened.
	CrashTick    int
	TakeoverTick int
	// DetectTicks is the takeover latency (TakeoverTick - CrashTick).
	DetectTicks int
	// Term is the final director generation (1 = primary never lost).
	Term uint32
	// WALRecords is how many sealed records the takeover replayed;
	// WALTorn reports a torn tail was recovered.
	WALRecords int
	WALTorn    bool
	// Reattached: placements re-attached to live processes on
	// surviving nodes. Restored: placements left pending at takeover,
	// re-placed warm from the persistent store by the normal fallback
	// chain.
	Reattached int
	Restored   int
}

// HA drives a primary director with an optional warm standby on one
// virtual clock.
type HA struct {
	// Primary is the active director (the takeover replaces it).
	Primary *Director

	cfg     HAConfig
	sb      *Standby
	crashed bool
	rep     HAReport
}

// NewHA builds the cluster and, when configured, its standby.
func NewHA(cfg HAConfig) (*HA, error) {
	if cfg.Cluster.DurableDir == "" {
		return nil, errors.New("cluster: HA requires Config.DurableDir")
	}
	if cfg.Cluster.OnTick != nil {
		return nil, errors.New("cluster: HA fleets hook ticks via HAConfig.OnTick")
	}
	d, err := New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	h := &HA{Primary: d, cfg: cfg, rep: HAReport{CrashTick: -1, TakeoverTick: -1}}
	if cfg.Standby {
		h.sb, err = NewStandby(d.FS, d.cfg.DurableDir, d.cfg.Key, d.cfg.HeartbeatEvery, d.cfg.MissThreshold)
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// CrashPrimary kills the active director (fault injection). Nodes and
// their processes keep their state; only the coordinator dies.
func (h *HA) CrashPrimary() { h.Primary.selfCrashed = true }

// Crashed reports whether the active director is dead right now.
func (h *HA) Crashed() bool { return h.crashed || h.Primary.selfCrashed }

// Run drives the fleet like Director.Run, surviving director crashes
// when a standby is attached.
func (h *HA) Run(reqs []core.RunRequest) (*HAReport, error) {
	if err := h.Primary.place(reqs); err != nil {
		return nil, err
	}
	maxTicks := h.Primary.cfg.MaxTicks
	for tick := 0; ; tick++ {
		d := h.Primary
		if tick >= maxTicks {
			for _, pl := range d.placements {
				if !pl.done {
					d.finish(pl, fmt.Errorf("cluster: %s: virtual clock exhausted at tick %d", pl.name, tick))
				}
			}
			break
		}
		if h.crashed {
			if h.sb == nil {
				h.rep.DirectorLost = true
				for _, pl := range d.placements {
					if !pl.done {
						d.finish(pl, fmt.Errorf("cluster: %s: %w", pl.name, ErrDirectorLost))
					}
				}
				break
			}
			if h.sb.Check(tick) {
				nd, err := h.takeover(tick)
				if err != nil {
					return nil, err
				}
				h.Primary = nd
				h.sb = nil
				h.crashed = false
			}
			continue
		}
		// The warm standby tails while the primary is healthy.
		if h.sb != nil {
			h.sb.Check(tick)
		}
		if h.cfg.OnTick != nil {
			h.cfg.OnTick(h, tick)
		}
		if h.Primary.selfCrashed {
			h.noteCrash(tick)
			continue
		}
		if h.Primary.allDone() {
			break
		}
		if h.Primary.stepTick() {
			break
		}
	}
	h.rep.Fleet = h.Primary.seal()
	h.rep.Term = 1
	if h.Primary.wal != nil {
		h.rep.Term = h.Primary.wal.Term()
	}
	return &h.rep, nil
}

func (h *HA) noteCrash(tick int) {
	h.crashed = true
	h.rep.CrashTick = tick
}

// shadowProc is the standby's per-process view rebuilt from the WAL.
type shadowProc struct {
	name     string
	stdin    []byte
	deadline uint64
	home     NodeID // 0 while homeless/pending
	pending  bool
	done     bool
	fin      *durable.Record
	rep      ProcReport
}

// takeover builds the successor director at virtual tick now: validate
// and recover the WAL from disk, replay every decision into a fresh
// fence and placement table, bump the term, and re-attach or re-place
// every unfinished process.
func (h *HA) takeover(now int) (*Director, error) {
	old := h.Primary
	cfg := old.cfg
	wal, info, err := durable.Open(old.FS, cfg.DurableDir, cfg.Key)
	if err != nil {
		return nil, fmt.Errorf("cluster: takeover: %w", err)
	}
	// The takeover record opens the new term before anything else
	// happens: its anchor write fences the deposed director's log
	// handle, so a zombie primary can never append again.
	wal.BumpTerm()
	if err := wal.Append(&durable.Record{Kind: durable.KindTakeover, Tick: uint64(now)}); err != nil {
		return nil, fmt.Errorf("cluster: takeover record: %w", err)
	}
	h.rep.TakeoverTick = now
	h.rep.DetectTicks = now - h.rep.CrashTick
	h.rep.WALRecords = len(info.Records)
	h.rep.WALTorn = info.Torn

	nd := &Director{
		cfg:      cfg,
		FS:       old.FS,
		Fabric:   old.Fabric,
		nodes:    old.nodes,
		fence:    NewFence(),
		exes:     old.exes,
		byName:   make(map[string]*placement),
		declared: make([]bool, cfg.Nodes),
		misses:   make([]int, cfg.Nodes),
		tick:     now,
		wal:      wal,
		rep:      &FleetReport{},
	}
	// Display continuity: carry the observable timeline and heartbeat
	// totals forward. Every trust-relevant structure below is rebuilt
	// from the WAL, not copied.
	nd.rep.Events = append(nd.rep.Events, old.rep.Events...)
	nd.rep.Beats = old.rep.Beats
	nd.rep.MissedBeats = old.rep.MissedBeats

	// Replay: the same transitions the primary logged, in order.
	var order []string
	shadow := make(map[string]*shadowProc)
	sp := func(name string) *shadowProc {
		s := shadow[name]
		if s == nil {
			s = &shadowProc{name: name, rep: ProcReport{Name: name}}
			shadow[name] = s
			order = append(order, name)
		}
		return s
	}
	for i := range info.Records {
		r := &info.Records[i]
		switch r.Kind {
		case durable.KindPlace:
			s := sp(r.Name)
			s.stdin = r.Data
			s.deadline = r.Cycles
			s.home = NodeID(r.Node)
			s.pending = false
			nd.fence.Place(r.Name, NodeID(r.Node))
		case durable.KindColdStart:
			s := sp(r.Name)
			s.home = NodeID(r.Node)
			s.pending = false
			s.rep.ColdStarts++
			nd.fence.Place(r.Name, NodeID(r.Node))
		case durable.KindCheckpoint:
			sp(r.Name).rep.Checkpoints++
		case durable.KindExportFence:
			s := sp(r.Name)
			s.rep.Checkpoints++
			s.rep.Migrations++
			s.home = 0
			s.pending = true
			nd.fence.ExportFence(r.Name)
		case durable.KindMigDone:
			s := sp(r.Name)
			s.home = NodeID(r.Node)
			s.pending = false
			nd.fence.Commit(r.Name, r.Epoch, NodeID(r.Node))
		case durable.KindMigTorn:
			sp(r.Name).rep.Failovers++
		case durable.KindRestore:
			s := sp(r.Name)
			s.home = NodeID(r.Node)
			s.pending = false
			s.rep.WarmRestarts++
			s.rep.RestoredCycles += r.Cycles
			nd.fence.Commit(r.Name, r.Epoch, NodeID(r.Node))
		case durable.KindNodeDown:
			if n := int(r.Node); n >= 1 && n <= cfg.Nodes {
				nd.declared[n-1] = true
				nd.rep.NodesDown = append(nd.rep.NodesDown, NodeID(n))
			}
			nd.fence.NodeDown(NodeID(r.Node))
		case durable.KindFailover:
			s := sp(r.Name)
			s.home = 0
			s.pending = true
			s.rep.Failovers++
		case durable.KindFinish:
			s := sp(r.Name)
			s.done = true
			s.fin = r
		}
	}

	// Rebuild placements in original request order (KindPlace order).
	for _, name := range order {
		s := shadow[name]
		pl := &placement{
			name:      name,
			exe:       nd.exes[name],
			stdin:     string(s.stdin),
			home:      -1,
			deadline:  s.deadline,
			failovers: s.rep.Failovers,
			rep:       s.rep,
		}
		if pl.deadline == 0 {
			pl.deadline = cfg.MaxCycles
		}
		store, err := nd.newStore(name)
		if err != nil {
			return nil, err
		}
		pl.store = store
		nd.placements = append(nd.placements, pl)
		nd.byName[name] = pl
		if s.done {
			pl.done = true
			if f := s.fin; f != nil {
				pl.rep.Node = NodeID(f.Node)
				if f.Flags&durable.FlagErr != 0 {
					pl.rep.Err = errors.New(f.Str)
				} else {
					pl.rep.Result = &core.Result{
						Output:   string(f.Data),
						ExitCode: f.Code,
						Killed:   f.Flags&durable.FlagKilled != 0,
						Reason:   kernel.KillReason(f.Str),
						Cycles:   f.Cycles,
					}
				}
			}
			continue
		}
		// Re-attach: the node survived the director and still holds the
		// live process — ownership was never fenced away, so the fleet
		// resumes without touching a checkpoint.
		var p *kernel.Process
		_, fenced, ok := nd.fence.Owner(name)
		if !s.pending && s.home >= 1 && ok && !fenced {
			if node := nd.Node(s.home); node != nil && !nd.declared[s.home-1] {
				p = node.Owned(name)
			}
		}
		if p != nil {
			pl.proc = p
			pl.home = int(s.home) - 1
			if cfg.CheckpointEvery > 0 {
				pl.nextCkpt = p.CPU.Cycles + uint64(cfg.CheckpointEvery)
			}
			h.rep.Reattached++
			nd.event("%s re-attached on node %d (%d cycles)", name, s.home, p.CPU.Cycles)
			continue
		}
		// Everything else re-places through the ordinary fallback chain
		// — warm from the persistent store whenever the fence admits.
		pl.pending = true
		pl.resumeAt = now
		h.rep.Restored++
	}

	nd.event("standby takeover: term %d, %d records replayed (torn tail: %v)",
		wal.Term(), len(info.Records), info.Torn)
	return nd, nil
}
