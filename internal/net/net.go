// Package net is the deterministic in-memory loopback network behind
// the kernel's socket system calls: a port namespace, listeners with
// bounded backlogs, and message-framed stream endpoints with bounded
// buffers and blocking semantics.
//
// # Determinism contract
//
// The network is shared mutable state, so *which* connection a listener
// accepts first, and which ephemeral port a client is assigned, depend
// on goroutine interleaving. What does NOT depend on interleaving is
// everything a guest program can observe deterministically by
// construction of the workloads: streams are message-framed (each Send
// enqueues exactly one message, each Recv dequeues exactly one), so
// read boundaries never shift with timing; blocking consumes no modeled
// cycles (the trap handler charges the same fixed cost whether or not a
// call waited); and the per-connection protocol is private to the two
// endpoints. Workloads that must produce byte-stable artifacts keep
// their outputs order-independent (aggregate counters, not accept-order
// logs).
//
// # Blocking and the scheduler gate
//
// Guest processes run to completion on pool workers (internal/sched),
// so a blocking socket call must not pin its worker: with one worker a
// parked server would starve the client that could unblock it. Blocking
// entry points therefore take a Gate — the scheduler's run-slot
// semaphore. Before parking on the network's condition variable the
// caller releases its run slot (another runnable process takes the
// worker), and after waking it re-acquires the slot before returning to
// guest code. A nil Gate means the caller has no scheduler slot to
// yield (standalone programs); such callers never park — operations
// that would block fail with ErrWouldBlock instead, keeping
// single-process runs hang-free.
package net

import (
	"errors"
	"sync"
)

// Gate is the scheduler's run-slot semaphore (implemented by
// sched.Gate). Leave releases the caller's slot and must not block;
// Enter re-acquires one and may block.
type Gate interface {
	Leave()
	Enter()
}

// Sentinel errors; the kernel maps them onto errno values.
var (
	ErrInUse      = errors.New("net: port in use")           // EADDRINUSE
	ErrRefused    = errors.New("net: connection refused")    // ECONNREFUSED
	ErrReset      = errors.New("net: connection reset")      // ECONNRESET
	ErrNotConn    = errors.New("net: not connected")         // ENOTCONN
	ErrIsConn     = errors.New("net: already connected")     // EISCONN
	ErrMsgSize    = errors.New("net: message too long")      // EMSGSIZE
	ErrWouldBlock = errors.New("net: operation would block") // EAGAIN
	ErrClosed     = errors.New("net: socket closed")         // EBADF-ish; caller decides
)

const (
	// MaxMessage bounds one framed message (one Send).
	MaxMessage = 4096
	// connBuffer bounds the bytes queued toward one endpoint; a sender
	// blocks (or fails with ErrWouldBlock) once the peer's inbox holds
	// this much.
	connBuffer = 16384
	// MaxBacklog caps a listener's pending-connection queue.
	MaxBacklog = 64
	// ephemeralBase is the first port auto-assigned to connecting
	// sockets. Assignment order is interleaving-dependent; ephemeral
	// ports are never part of deterministic workload output.
	ephemeralBase = 49152
)

// Network is one loopback network: a port namespace plus the single
// lock and condition variable that all blocking socket operations share
// (one lock sidesteps lock-ordering concerns; broadcasts are cheap at
// guest-fleet scale).
type Network struct {
	mu        sync.Mutex
	cond      *sync.Cond
	ports     map[uint16]*Listener
	ephemeral uint16
}

// New creates an empty loopback network.
func New() *Network {
	n := &Network{ports: make(map[uint16]*Listener), ephemeral: ephemeralBase}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// wait parks the caller until the next state-change broadcast. With a
// gate, the caller's scheduler slot is released while parked and
// re-acquired — without the network lock held — before returning.
func (n *Network) wait(g Gate) {
	if g == nil {
		n.cond.Wait()
		return
	}
	g.Leave()
	n.cond.Wait()
	n.mu.Unlock()
	g.Enter()
	n.mu.Lock()
}

// Listener is a bound, listening port with a bounded backlog of
// connections that completed Dial but have not been Accepted.
type Listener struct {
	n        *Network
	port     uint16
	capacity int
	backlog  []*Conn
	closed   bool
}

// Listen binds and listens on port with the given backlog capacity
// (clamped to [1, MaxBacklog]). It fails with ErrInUse if the port has
// a live listener.
func (n *Network) Listen(port uint16, backlog int) (*Listener, error) {
	if backlog < 1 {
		backlog = 1
	}
	if backlog > MaxBacklog {
		backlog = MaxBacklog
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.ports[port]; ok {
		return nil, ErrInUse
	}
	l := &Listener{n: n, port: port, capacity: backlog}
	n.ports[port] = l
	n.cond.Broadcast() // port now bound: unblock dialers waiting for it
	return l, nil
}

// Port returns the listener's bound port.
func (l *Listener) Port() uint16 { return l.port }

// Accept dequeues the oldest pending connection, parking (via g) while
// the backlog is empty. With a nil gate an empty backlog fails with
// ErrWouldBlock. A closed listener fails with ErrClosed.
func (l *Listener) Accept(g Gate) (*Conn, error) {
	n := l.n
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if l.closed {
			return nil, ErrClosed
		}
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			copy(l.backlog, l.backlog[1:])
			l.backlog = l.backlog[:len(l.backlog)-1]
			n.cond.Broadcast() // backlog space freed: unblock dialers
			return c, nil
		}
		if g == nil {
			return nil, ErrWouldBlock
		}
		n.wait(g)
	}
}

// Close unbinds the port. Connections still in the backlog are reset
// (their dialers see ErrReset on use); already-accepted connections are
// unaffected.
func (l *Listener) Close() {
	n := l.n
	n.mu.Lock()
	defer n.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	delete(n.ports, l.port)
	for _, c := range l.backlog {
		c.closeLocked()
	}
	l.backlog = nil
	n.cond.Broadcast()
}

// Dial connects to a listening port, parking (via g) while the port is
// not yet bound or the listener's backlog is full. It returns the
// client endpoint; the server endpoint is queued for Accept.
//
// A gated dial to an unbound port waits for a listener to appear
// rather than failing: fleet startup order is interleaving-dependent,
// so a client racing ahead of its server must rendezvous, not refuse
// (a fleet whose clients dial a port no process ever binds deadlocks —
// that is a workload bug, like a lost pipe reader). Without a gate
// there is no sibling to wait for, so an unbound port fails with
// ErrRefused immediately; with a nil gate a full backlog means
// ErrWouldBlock.
func (n *Network) Dial(port uint16, g Gate) (*Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		l, ok := n.ports[port]
		if !ok || l.closed {
			if g == nil {
				return nil, ErrRefused
			}
			n.wait(g)
			continue
		}
		if len(l.backlog) < l.capacity {
			client, server := n.pairLocked()
			client.localPort = n.nextEphemeralLocked()
			client.remotePort = port
			server.localPort = port
			server.remotePort = client.localPort
			l.backlog = append(l.backlog, server)
			n.cond.Broadcast() // new pending connection: unblock acceptors
			return client, nil
		}
		if g == nil {
			return nil, ErrWouldBlock
		}
		n.wait(g)
	}
}

func (n *Network) nextEphemeralLocked() uint16 {
	p := n.ephemeral
	n.ephemeral++
	if n.ephemeral == 0 {
		n.ephemeral = ephemeralBase
	}
	return p
}

// Pair creates a connected endpoint pair outside the port namespace
// (the socketpair system call).
func (n *Network) Pair() (*Conn, *Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, b := n.pairLocked()
	return a, b
}

func (n *Network) pairLocked() (*Conn, *Conn) {
	a := &Conn{n: n}
	b := &Conn{n: n}
	a.peer, b.peer = b, a
	return a, b
}

// Conn is one endpoint of a message-framed stream. Each Send enqueues
// one message into the peer's inbox; each Recv dequeues one.
type Conn struct {
	n          *Network
	peer       *Conn
	inbox      [][]byte
	inboxBytes int
	closed     bool
	localPort  uint16
	remotePort uint16
}

// LocalPort returns the port bound to this endpoint (0 for socketpair
// endpoints).
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemotePort returns the peer's port (0 for socketpair endpoints).
func (c *Conn) RemotePort() uint16 { return c.remotePort }

// Send enqueues msg toward the peer, parking (via g) while the peer's
// inbox is full. Oversized messages fail with ErrMsgSize; a closed
// endpoint fails with ErrClosed, a closed peer with ErrReset (EPIPE at
// the syscall layer). The bytes are copied.
func (c *Conn) Send(msg []byte, g Gate) error {
	if len(msg) > MaxMessage {
		return ErrMsgSize
	}
	n := c.n
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if c.closed {
			return ErrClosed
		}
		if c.peer.closed {
			return ErrReset
		}
		if c.peer.inboxBytes+len(msg) <= connBuffer || len(c.peer.inbox) == 0 {
			c.peer.inbox = append(c.peer.inbox, append([]byte(nil), msg...))
			c.peer.inboxBytes += len(msg)
			n.cond.Broadcast() // data available: unblock receivers
			return nil
		}
		if g == nil {
			return ErrWouldBlock
		}
		n.wait(g)
	}
}

// Recv dequeues one message, parking (via g) while the inbox is empty
// and the peer is open. An empty inbox with a closed peer returns
// (nil, nil): end of stream. With a nil gate an empty inbox fails with
// ErrWouldBlock.
func (c *Conn) Recv(g Gate) ([]byte, error) {
	n := c.n
	n.mu.Lock()
	defer n.mu.Unlock()
	for {
		if c.closed {
			return nil, ErrClosed
		}
		if len(c.inbox) > 0 {
			msg := c.inbox[0]
			copy(c.inbox, c.inbox[1:])
			c.inbox[len(c.inbox)-1] = nil
			c.inbox = c.inbox[:len(c.inbox)-1]
			c.inboxBytes -= len(msg)
			n.cond.Broadcast() // buffer space freed: unblock senders
			return msg, nil
		}
		if c.peer.closed {
			return nil, nil // end of stream
		}
		if g == nil {
			return nil, ErrWouldBlock
		}
		n.wait(g)
	}
}

// Close shuts the endpoint down. Pending inbox data is dropped; the
// peer's next Recv on an empty inbox sees end of stream, its next Send
// sees ErrReset. Closing twice is a no-op.
func (c *Conn) Close() {
	n := c.n
	n.mu.Lock()
	defer n.mu.Unlock()
	c.closeLocked()
	n.cond.Broadcast()
}

func (c *Conn) closeLocked() {
	if c.closed {
		return
	}
	c.closed = true
	c.inbox = nil
	c.inboxBytes = 0
}

// Closed reports whether the endpoint has been closed.
func (c *Conn) Closed() bool {
	c.n.mu.Lock()
	defer c.n.mu.Unlock()
	return c.closed
}
