// metapolicy.go implements the Section 5.2 extension: metapolicies and
// policy templates. A metapolicy states what *must be* protected for each
// system call — as opposed to what the static analysis *can* protect —
// and the installer reports every site whose generated policy falls short
// as a template entry for the security administrator to complete by hand
// (with a value or a pattern).
package installer

import (
	"fmt"
	"sort"
	"strings"

	"asc/internal/policy"
	"asc/internal/sys"
)

// Requirement states the mandatory constraints for one system call.
type Requirement struct {
	// Args lists the argument indices (0-based) whose values must be
	// constrained by the policy.
	Args []int
	// CallSite requires the call site to be constrained (the basic
	// installer always constrains it; a metapolicy may demand it for
	// dynamic-library scenarios where it cannot be).
	CallSite bool
}

// Metapolicy maps system call names to their requirements. Calls not
// present have no mandatory constraints.
type Metapolicy map[string]Requirement

// DefaultMetapolicy reflects the threat-level guidance the paper cites:
// calls that create or destroy filesystem objects or execute programs
// must have their path arguments pinned.
func DefaultMetapolicy() Metapolicy {
	return Metapolicy{
		"execve": {Args: []int{0}, CallSite: true},
		"open":   {Args: []int{0}, CallSite: true},
		"unlink": {Args: []int{0}, CallSite: true},
		"rename": {Args: []int{0, 1}, CallSite: true},
		"chmod":  {Args: []int{0}, CallSite: true},
		"socket": {Args: []int{0, 1}, CallSite: true},
	}
}

// TemplateEntry is one unmet requirement: a hole the administrator must
// fill with a hand-specified value or pattern.
type TemplateEntry struct {
	Program  string
	Name     string // system call
	Site     uint32
	Arg      int    // argument index; -1 for a call-site requirement
	ArgClass string // signature class of the argument, as a filling aid
}

func (e TemplateEntry) String() string {
	if e.Arg < 0 {
		return fmt.Sprintf("%s: %s at %#x: call site must be constrained", e.Program, e.Name, e.Site)
	}
	return fmt.Sprintf("%s: %s at %#x: parameter %d (%s) requires a value or pattern",
		e.Program, e.Name, e.Site, e.Arg, e.ArgClass)
}

// CheckMetapolicy evaluates a generated program policy against a
// metapolicy and returns the policy template: the ordered list of holes
// that static analysis could not fill.
func CheckMetapolicy(pp *policy.ProgramPolicy, mp Metapolicy) []TemplateEntry {
	var out []TemplateEntry
	for _, sp := range pp.Sites {
		req, ok := mp[sp.Name]
		if !ok {
			continue
		}
		sig, _ := sys.LookupName(sp.Name)
		for _, ai := range req.Args {
			if ai < 0 || ai >= len(sp.Args) {
				continue
			}
			switch sp.Args[ai].Class {
			case policy.ClassImmediate, policy.ClassString:
				continue // satisfied by static analysis
			}
			class := "unknown"
			if ai < sig.NArgs() {
				class = sig.Args[ai].String()
			}
			out = append(out, TemplateEntry{
				Program: pp.Program, Name: sp.Name, Site: sp.Site, Arg: ai, ArgClass: class,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Arg < out[j].Arg
	})
	return out
}

// RenderTemplate prints the policy template for the administrator.
func RenderTemplate(entries []TemplateEntry) string {
	if len(entries) == 0 {
		return "metapolicy satisfied: no template entries\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "policy template: %d entr(ies) require hand completion\n", len(entries))
	for _, e := range entries {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}
