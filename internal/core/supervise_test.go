package core

import (
	"strings"
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/linker"
)

var superviseKey = []byte("0123456789abcdef")

func buildRaw(t *testing.T, src string) *binfmt.File {
	t.Helper()
	obj, err := asm.Assemble("main.s", src)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := libc.Objects(libc.Linux)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{obj}, lib)
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

const superviseCleanSrc = `
        .text
        .global main
main:
        MOVI r1, msg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "ok"
`

// superviseKilledSrc issues a SYSCALL whose number is computed at run
// time; the installer cannot authenticate the site, so it stays a raw
// SYSCALL that an enforcing kernel refuses on every attempt.
const superviseKilledSrc = `
        .text
        .global main
main:
        LOAD r0, [sp+0]
        SYSCALL
        MOVI r0, 0
        RET
`

func newSystem(t *testing.T, cfg Config) *System {
	t.Helper()
	if cfg.Key == nil && !cfg.Permissive {
		cfg.Key = superviseKey
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSuperviseCleanExit: a healthy program runs once, no restarts.
func TestSuperviseCleanExit(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, superviseCleanSrc), "clean")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Supervise(exe, "clean", "", SuperviseConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Attempts != 1 || stats.Restarts != 0 || stats.GaveUp {
		t.Errorf("stats = %+v, want single clean attempt", stats)
	}
	if !strings.Contains(stats.Final.Output, "ok") {
		t.Errorf("output %q", stats.Final.Output)
	}
}

// TestSuperviseRestartsAndBackoff: a persistently-killed program is
// restarted with doubling, capped backoff until the budget is spent.
func TestSuperviseRestartsAndBackoff(t *testing.T) {
	s := newSystem(t, Config{})
	exe, _, _, err := s.Install(buildRaw(t, superviseKilledSrc), "bad")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Supervise(exe, "bad", "", SuperviseConfig{
		MaxRestarts: 4,
		BackoffBase: 100,
		BackoffCap:  400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.GaveUp {
		t.Error("supervisor did not give up on a persistent failure")
	}
	if stats.Attempts != 5 || stats.Restarts != 4 {
		t.Errorf("attempts=%d restarts=%d, want 5/4", stats.Attempts, stats.Restarts)
	}
	if stats.Causes[string(kernel.KillUnauthenticated)] != 5 {
		t.Errorf("causes = %v", stats.Causes)
	}
	// Backoffs: 100, 200, 400, 400 (capped).
	want := []uint64{100, 200, 400, 400}
	if len(stats.Events) != len(want) {
		t.Fatalf("events = %+v", stats.Events)
	}
	var total uint64
	for i, ev := range stats.Events {
		if ev.Backoff != want[i] {
			t.Errorf("backoff[%d] = %d, want %d", i, ev.Backoff, want[i])
		}
		total += ev.Backoff
	}
	if stats.TotalBackoff != total {
		t.Errorf("TotalBackoff = %d, want %d", stats.TotalBackoff, total)
	}
	if !stats.Final.Killed {
		t.Error("final result not killed")
	}
}

// TestSuperviseRunaway: a Deny-mode process whose chain is unrecoverable
// overruns its cycle budget; the supervisor classifies it as a runaway
// and restarts it.
func TestSuperviseRunaway(t *testing.T) {
	s := newSystem(t, Config{Enforcement: kernel.EnforceDeny})
	exe, _, _, err := s.Install(buildRaw(t, superviseKilledSrc), "bad")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := s.Supervise(exe, "bad", "", SuperviseConfig{
		MaxRestarts: 1,
		MaxCycles:   300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.GaveUp || stats.Attempts != 2 {
		t.Errorf("stats = %+v, want 2 runaway attempts", stats)
	}
	if stats.Causes["runaway"] != 2 {
		t.Errorf("causes = %v", stats.Causes)
	}
}
