package installer

import (
	"strings"
	"testing"

	"asc/internal/binfmt"
	"asc/internal/isa"
	"asc/internal/libc"
)

func TestInstallRejectsBadKey(t *testing.T) {
	exe := linkProgram(t, openSrc, libc.Linux)
	for _, key := range [][]byte{nil, {1, 2, 3}, make([]byte, 32)} {
		if _, _, _, err := Install(exe, "x", Options{Key: key}); err == nil {
			t.Errorf("key %v accepted", key)
		}
	}
}

func TestBuildIRRejectsUnrelocatableControlFlow(t *testing.T) {
	// Hand-craft text containing a CALL with a raw immediate and no
	// relocation entry: the rewriter must refuse.
	text := make([]byte, 2*isa.InstrSize)
	isa.Instr{Op: isa.OpCALL, Imm: 0x1008}.Encode(text)
	isa.Instr{Op: isa.OpRET}.Encode(text[isa.InstrSize:])
	f := &binfmt.File{
		Relocatable: true,
		Sections: []binfmt.Section{
			{Name: binfmt.SecText, Size: uint32(len(text)), Flags: binfmt.FlagRead | binfmt.FlagExec, Data: text},
		},
		Symbols: []binfmt.Symbol{
			{Name: "_start", Section: 0, Value: 0, Kind: binfmt.SymFunc, Global: true},
		},
	}
	f.Layout()
	if _, err := buildIR(f); err == nil || !strings.Contains(err.Error(), "no relocation") {
		t.Errorf("buildIR = %v, want relocation error", err)
	}
}

func TestBuildIRRequiresRelocatable(t *testing.T) {
	out, _, _ := install(t, openSrc, Options{})
	if _, err := buildIR(out); err == nil {
		t.Error("buildIR accepted a non-relocatable binary")
	}
	if _, err := Optimize(out); err == nil {
		t.Error("Optimize accepted a non-relocatable binary")
	}
	if _, _, err := GeneratePolicy(out, "x", "linux"); err == nil {
		t.Error("GeneratePolicy accepted a non-relocatable binary")
	}
}

func TestOptimizeNoText(t *testing.T) {
	f := &binfmt.File{Relocatable: true}
	if _, err := Optimize(f); err == nil {
		t.Error("Optimize accepted a binary without .text")
	}
}

func TestInstallRejectsPreexistingASYSCALL(t *testing.T) {
	// A binary that already contains ASYSCALL did not come from a
	// compiler; the installer refuses rather than producing a broken
	// policy (the ASYSCALL has no preamble to patch).
	src := `
        .text
        .global main
main:
        MOVI r0, 12
        ASYSCALL
        MOVI r0, 0
        RET
`
	exe := linkProgram(t, src, libc.Linux)
	if _, _, _, err := Install(exe, "x", Options{Key: testKey}); err == nil {
		t.Error("binary with pre-existing ASYSCALL accepted")
	}
}

func TestPolicyStringOutput(t *testing.T) {
	_, pp, _ := install(t, openSrc, Options{})
	var openPol string
	for _, sp := range pp.Sites {
		if sp.Name == "open" {
			openPol = sp.String()
		}
	}
	// Matches the paper's policy rendering style (§3.1 example).
	for _, want := range []string{
		"Permit open from location",
		"in basic block",
		`Parameter 0 equals "/dev/console"`,
		"Parameter 1 equals 5",
		"Possible predecessors",
	} {
		if !strings.Contains(openPol, want) {
			t.Errorf("policy missing %q:\n%s", want, openPol)
		}
	}
}

func TestInstalledAuthSectionLast(t *testing.T) {
	out, _, _ := install(t, openSrc, Options{})
	last := out.Sections[len(out.Sections)-1]
	if last.Name != binfmt.SecAuth {
		t.Errorf("last section is %s, want .auth", last.Name)
	}
	// .auth must start at or after every other section's end so growth
	// never overlaps.
	for _, s := range out.Sections[:len(out.Sections)-1] {
		if s.End() > last.Addr {
			t.Errorf("section %s (%#x..%#x) overlaps .auth at %#x", s.Name, s.Addr, s.End(), last.Addr)
		}
	}
}

func TestDoubleOptimizeStable(t *testing.T) {
	exe := linkProgram(t, helloSrc, libc.Linux)
	opt1, err := Optimize(exe)
	if err != nil {
		t.Fatal(err)
	}
	opt2, err := Optimize(opt1)
	if err != nil {
		t.Fatalf("second Optimize: %v", err)
	}
	t1 := opt1.Section(binfmt.SecText)
	t2 := opt2.Section(binfmt.SecText)
	if t1.Size != t2.Size {
		t.Errorf("Optimize not idempotent: %d -> %d bytes", t1.Size, t2.Size)
	}
}
