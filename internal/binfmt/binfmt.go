// Package binfmt implements SELF, the Simple Executable and Linkable Format
// of the simulated platform.
//
// PLTO, the binary rewriter the paper builds its trusted installer on,
// requires relocatable binaries: every absolute address embedded in code or
// data is described by a relocation entry, so that analyses can move code
// and data and fix the addresses up afterwards. SELF reproduces exactly
// that property. The assembler emits relocatable objects, the linker emits
// relocatable executables, and the installer emits non-relocatable
// authenticated executables (policies embed absolute addresses, so the
// result can no longer be relocated — matching Section 4.1 of the paper).
package binfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Magic identifies a SELF file.
const Magic = "SELF"

// Version is the current format version.
const Version = 1

// Section permission flags.
const (
	FlagRead  uint8 = 1 << iota // readable
	FlagWrite                   // writable
	FlagExec                    // executable
)

// Well-known section names.
const (
	SecText   = ".text"
	SecROData = ".rodata"
	SecData   = ".data"
	SecAuth   = ".auth" // authenticated strings, call MACs, policy state
	SecBSS    = ".bss"
)

// TextBase is the address where the first section (.text) is laid out.
const TextBase = 0x1000

// SectionAlign is the alignment of section start addresses.
const SectionAlign = 16

// Limits protecting the reader from corrupt or hostile inputs.
const (
	maxSections    = 64
	maxSectionSize = 64 << 20
	maxSymbols     = 1 << 20
	maxRelocs      = 1 << 22
	maxNameLen     = 4096
)

// ErrBadMagic is returned when a file does not start with the SELF magic.
var ErrBadMagic = errors.New("binfmt: bad magic")

// SymKind classifies a symbol.
type SymKind uint8

// Symbol kinds.
const (
	SymFunc   SymKind = iota + 1 // function entry point
	SymObject                    // data object
	SymString                    // NUL-terminated string constant (from .asciz)
	SymLabel                     // local code label (branch target)
)

func (k SymKind) String() string {
	switch k {
	case SymFunc:
		return "func"
	case SymObject:
		return "object"
	case SymString:
		return "string"
	case SymLabel:
		return "label"
	default:
		return fmt.Sprintf("SymKind(%d)", uint8(k))
	}
}

// Section is a contiguous region of the program image.
type Section struct {
	Name  string
	Addr  uint32 // assigned by Layout; 0 in unlaid-out objects
	Size  uint32 // equals len(Data) except for .bss, whose Data is empty
	Flags uint8
	Data  []byte
}

// End returns the address one past the section's last byte.
func (s *Section) End() uint32 { return s.Addr + s.Size }

// Contains reports whether addr falls within the section.
func (s *Section) Contains(addr uint32) bool {
	return addr >= s.Addr && addr < s.End()
}

// Symbol names a location within a section (or an undefined reference).
type Symbol struct {
	Name    string
	Section int32  // index into Sections; -1 if undefined
	Value   uint32 // offset within the section
	Kind    SymKind
	Global  bool
}

// Defined reports whether the symbol refers to a location in this file.
func (s *Symbol) Defined() bool { return s.Section >= 0 }

// Reloc records that the 4 bytes at Offset within Section hold an absolute
// address that must equal the address of Sym plus Addend.
type Reloc struct {
	Section int32 // section containing the patched bytes
	Offset  uint32
	Sym     int32 // index into Symbols
	Addend  int32
}

// File is a parsed SELF object, executable, or authenticated executable.
type File struct {
	Entry         uint32 // entry point address (executables only)
	Relocatable   bool   // relocation info is complete; rewriting is possible
	Authenticated bool   // system calls have been replaced by authenticated calls
	ProgramID     uint32 // unique program ID (Frankenstein countermeasure, §5.5)
	Sections      []Section
	Symbols       []Symbol
	Relocs        []Reloc
}

// Section returns the section with the given name, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// SectionIndex returns the index of the named section, or -1.
func (f *File) SectionIndex(name string) int32 {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return int32(i)
		}
	}
	return -1
}

// Symbol returns the first symbol with the given name, or nil.
func (f *File) Symbol(name string) *Symbol {
	for i := range f.Symbols {
		if f.Symbols[i].Name == name {
			return &f.Symbols[i]
		}
	}
	return nil
}

// SymbolAddr returns the absolute address of the named symbol. The file
// must be laid out. It reports whether the symbol exists and is defined.
func (f *File) SymbolAddr(name string) (uint32, bool) {
	s := f.Symbol(name)
	if s == nil || !s.Defined() {
		return 0, false
	}
	return f.Sections[s.Section].Addr + s.Value, true
}

// AddrOf returns the absolute address of symbol index i.
func (f *File) AddrOf(i int32) (uint32, error) {
	if i < 0 || int(i) >= len(f.Symbols) {
		return 0, fmt.Errorf("binfmt: symbol index %d out of range", i)
	}
	s := &f.Symbols[i]
	if !s.Defined() {
		return 0, fmt.Errorf("binfmt: symbol %q undefined", s.Name)
	}
	return f.Sections[s.Section].Addr + s.Value, nil
}

// SectionAt returns the section containing addr, or nil.
func (f *File) SectionAt(addr uint32) *Section {
	for i := range f.Sections {
		if f.Sections[i].Contains(addr) {
			return &f.Sections[i]
		}
	}
	return nil
}

// SymbolAt returns the name of the defined symbol whose address most
// closely precedes (or equals) addr, along with the offset from it. It is
// a debugging aid for disassembly and audit logs.
func (f *File) SymbolAt(addr uint32) (string, uint32) {
	bestName, bestAddr, found := "", uint32(0), false
	for i := range f.Symbols {
		s := &f.Symbols[i]
		if !s.Defined() || s.Kind == SymLabel {
			continue
		}
		a := f.Sections[s.Section].Addr + s.Value
		if a <= addr && (!found || a > bestAddr) {
			bestName, bestAddr, found = s.Name, a, true
		}
	}
	if !found {
		return "", 0
	}
	return bestName, addr - bestAddr
}

// align rounds v up to the next multiple of a (a must be a power of two).
func align(v, a uint32) uint32 { return (v + a - 1) &^ (a - 1) }

// Layout assigns addresses to all sections, in their current order,
// starting at TextBase, and resolves the entry point from the _start
// symbol if present.
func (f *File) Layout() {
	addr := uint32(TextBase)
	for i := range f.Sections {
		addr = align(addr, SectionAlign)
		f.Sections[i].Addr = addr
		addr += f.Sections[i].Size
	}
	if e, ok := f.SymbolAddr("_start"); ok {
		f.Entry = e
	}
}

// ApplyRelocs patches every relocation site with the current address of
// its target symbol. The file must be laid out first.
func (f *File) ApplyRelocs() error {
	for ri, r := range f.Relocs {
		if r.Section < 0 || int(r.Section) >= len(f.Sections) {
			return fmt.Errorf("binfmt: reloc %d: bad section %d", ri, r.Section)
		}
		sec := &f.Sections[r.Section]
		if sec.Name == SecBSS {
			return fmt.Errorf("binfmt: reloc %d targets .bss", ri)
		}
		if int(r.Offset)+4 > len(sec.Data) {
			return fmt.Errorf("binfmt: reloc %d: offset %d out of range for %s", ri, r.Offset, sec.Name)
		}
		addr, err := f.AddrOf(r.Sym)
		if err != nil {
			return fmt.Errorf("binfmt: reloc %d: %w", ri, err)
		}
		binary.LittleEndian.PutUint32(sec.Data[r.Offset:], addr+uint32(r.Addend))
	}
	return nil
}

// Image materializes the program image as a single byte slice covering
// [TextBase, end) plus the extent of .bss, together with the image base
// address. The caller maps it into simulated memory.
func (f *File) Image() (base uint32, img []byte, err error) {
	if len(f.Sections) == 0 {
		return 0, nil, errors.New("binfmt: no sections")
	}
	base = f.Sections[0].Addr
	end := base
	for i := range f.Sections {
		if f.Sections[i].Addr < base {
			base = f.Sections[i].Addr
		}
		if e := f.Sections[i].End(); e > end {
			end = e
		}
	}
	if end < base || end-base > maxSectionSize*4 {
		return 0, nil, fmt.Errorf("binfmt: image size %d out of range", end-base)
	}
	img = make([]byte, end-base)
	for i := range f.Sections {
		s := &f.Sections[i]
		copy(img[s.Addr-base:], s.Data)
	}
	return base, img, nil
}

// SortRelocs orders relocations by (section, offset) for deterministic
// output.
func (f *File) SortRelocs() {
	sort.Slice(f.Relocs, func(i, j int) bool {
		a, b := f.Relocs[i], f.Relocs[j]
		if a.Section != b.Section {
			return a.Section < b.Section
		}
		return a.Offset < b.Offset
	})
}

// --- serialization ---

type countWriter struct {
	w   io.Writer
	err error
}

func (cw *countWriter) u8(v uint8) { cw.bytes([]byte{v}) }
func (cw *countWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.bytes(b[:])
}
func (cw *countWriter) str(s string) { cw.u32(uint32(len(s))); cw.bytes([]byte(s)) }
func (cw *countWriter) bytes(b []byte) {
	if cw.err != nil {
		return
	}
	_, cw.err = cw.w.Write(b)
}

// Write serializes the file.
func (f *File) Write(w io.Writer) error {
	cw := &countWriter{w: w}
	cw.bytes([]byte(Magic))
	cw.u8(Version)
	var flags uint8
	if f.Relocatable {
		flags |= 1
	}
	if f.Authenticated {
		flags |= 2
	}
	cw.u8(flags)
	cw.u32(f.Entry)
	cw.u32(f.ProgramID)
	cw.u32(uint32(len(f.Sections)))
	for i := range f.Sections {
		s := &f.Sections[i]
		cw.str(s.Name)
		cw.u32(s.Addr)
		cw.u32(s.Size)
		cw.u8(s.Flags)
		cw.u32(uint32(len(s.Data)))
		cw.bytes(s.Data)
	}
	cw.u32(uint32(len(f.Symbols)))
	for i := range f.Symbols {
		s := &f.Symbols[i]
		cw.str(s.Name)
		cw.u32(uint32(s.Section))
		cw.u32(s.Value)
		cw.u8(uint8(s.Kind))
		if s.Global {
			cw.u8(1)
		} else {
			cw.u8(0)
		}
	}
	cw.u32(uint32(len(f.Relocs)))
	for _, r := range f.Relocs {
		cw.u32(uint32(r.Section))
		cw.u32(r.Offset)
		cw.u32(uint32(r.Sym))
		cw.u32(uint32(r.Addend))
	}
	return cw.err
}

// Bytes serializes the file into a new byte slice.
func (f *File) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("binfmt: "+format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("truncated file (need %d bytes at offset %d)", n, r.off)
		return nil
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) str() string {
	n := r.u32()
	if n > maxNameLen {
		r.fail("name too long (%d)", n)
		return ""
	}
	return string(r.take(int(n)))
}

// Read parses a SELF file from b.
func Read(b []byte) (*File, error) {
	r := &reader{b: b}
	if string(r.take(4)) != Magic {
		return nil, ErrBadMagic
	}
	if v := r.u8(); v != Version && r.err == nil {
		return nil, fmt.Errorf("binfmt: unsupported version %d", v)
	}
	flags := r.u8()
	f := &File{
		Relocatable:   flags&1 != 0,
		Authenticated: flags&2 != 0,
	}
	f.Entry = r.u32()
	f.ProgramID = r.u32()

	nsec := r.u32()
	if nsec > maxSections {
		r.fail("too many sections (%d)", nsec)
	}
	for i := uint32(0); i < nsec && r.err == nil; i++ {
		var s Section
		s.Name = r.str()
		s.Addr = r.u32()
		s.Size = r.u32()
		s.Flags = r.u8()
		n := r.u32()
		if n > maxSectionSize || s.Size > maxSectionSize {
			r.fail("section %q too large", s.Name)
			break
		}
		s.Data = append([]byte(nil), r.take(int(n))...)
		f.Sections = append(f.Sections, s)
	}

	nsym := r.u32()
	if nsym > maxSymbols {
		r.fail("too many symbols (%d)", nsym)
	}
	for i := uint32(0); i < nsym && r.err == nil; i++ {
		var s Symbol
		s.Name = r.str()
		s.Section = int32(r.u32())
		s.Value = r.u32()
		s.Kind = SymKind(r.u8())
		s.Global = r.u8() != 0
		if s.Section >= int32(len(f.Sections)) {
			r.fail("symbol %q: section index %d out of range", s.Name, s.Section)
			break
		}
		f.Symbols = append(f.Symbols, s)
	}

	nrel := r.u32()
	if nrel > maxRelocs {
		r.fail("too many relocs (%d)", nrel)
	}
	for i := uint32(0); i < nrel && r.err == nil; i++ {
		var rel Reloc
		rel.Section = int32(r.u32())
		rel.Offset = r.u32()
		rel.Sym = int32(r.u32())
		rel.Addend = int32(r.u32())
		if rel.Section < 0 || rel.Section >= int32(len(f.Sections)) {
			r.fail("reloc %d: section index out of range", i)
			break
		}
		if rel.Sym < 0 || rel.Sym >= int32(len(f.Symbols)) {
			r.fail("reloc %d: symbol index out of range", i)
			break
		}
		f.Relocs = append(f.Relocs, rel)
	}
	if r.err != nil {
		return nil, r.err
	}
	return f, nil
}
