package kernel

import (
	"testing"

	"asc/internal/binfmt"
	"asc/internal/installer"
	"asc/internal/isa"
	"asc/internal/policy"
	"asc/internal/sys"
)

// cacheLoopSrc opens and closes the same file repeatedly from the same
// call sites; iteration count arrives in r12 before the loop.
const cacheLoopSrc = `
        .text
        .global main
main:
        MOVI r12, 4
.loop:
        MOVI r1, path
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r1, r0
        CALL close
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        MOVI r0, 0
        RET
        .rodata
path:   .asciz "/tmp/out"
`

// cacheLoopPatternSrc is the pattern-test victim in a two-iteration loop:
// each pass reads a path from stdin and opens it at the same site.
const cacheLoopPatternSrc = `
        .text
        .global main
main:
        SUBI sp, sp, 64
        MOVI r12, 2
.loop:
        MOV r1, sp
        CALL gets
        MOV r1, sp
        MOVI r2, 0x41
        MOVI r3, 420
        CALL open
        MOV r1, r0
        CALL close
        ADDI r12, r12, -1
        MOVI r9, 0
        BNE r12, r9, .loop
        ADDI sp, sp, 64
        MOVI r0, 0
        RET
`

// stepToOpen advances the CPU to the ASYSCALL instruction of the first
// open(2) trap and returns the decoded auth record plus the record and
// first-argument addresses, without executing the trap.
func stepToOpen(t *testing.T, p *Process) (policy.AuthRecord, uint32, uint32) {
	t.Helper()
	for {
		raw, err := p.Mem.KernelRead(p.CPU.PC, isa.InstrSize)
		if err != nil {
			t.Fatal(err)
		}
		in, err := isa.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == isa.OpASYSCALL && uint16(p.CPU.Regs[isa.R0]) == sys.SysOpen {
			break
		}
		if err := p.CPU.Step(); err != nil {
			t.Fatal(err)
		}
	}
	recAddr := p.CPU.Regs[isa.R6]
	descWord, err := p.Mem.KernelLoad32(recAddr)
	if err != nil {
		t.Fatal(err)
	}
	n := uint32(policy.AuthRecordSize + 4*policy.Descriptor(descWord).NumPatterns())
	recBytes, err := p.Mem.KernelRead(recAddr, n)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := policy.DecodeAuthRecord(recBytes)
	if err != nil {
		t.Fatal(err)
	}
	return rec, recAddr, p.arg(0)
}

// corruptTarget picks the address an attacker store will flip, given the
// state captured at the first open trap.
type corruptTarget func(rec policy.AuthRecord, recAddr, strAddr uint32) uint32

// runCorrupted executes the given binary until the first open trap
// completes (filling the cache when enabled), then flips one byte at the
// chosen address via an application-visible store, and runs to the end.
func runCorrupted(t *testing.T, exe *binfmt.File, stdin string, cached bool, pick corruptTarget) *Process {
	t.Helper()
	var opts []Option
	if cached {
		opts = append(opts, WithVerifyCache())
	}
	k := newKernel(t, opts...)
	p, err := k.Spawn(exe, "test")
	if err != nil {
		t.Fatal(err)
	}
	p.Stdin = []byte(stdin)
	rec, recAddr, strAddr := stepToOpen(t, p)
	// Execute the open trap itself: a cache fill when caching is on.
	if err := p.CPU.Step(); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("killed before corruption: %v", p.KilledBy)
	}
	addr := pick(rec, recAddr, strAddr)
	old, err := p.Mem.KernelRead(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The attacker's store: application-visible, so it bumps the
	// segment's store-generation exactly like a STORE instruction.
	if err := p.Mem.UserWrite(addr, []byte{old[0] ^ 0xff}); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCacheSoundness corrupts each MAC-protected input after the cache
// has been filled and checks that the cached kernel kills the process for
// exactly the same reason as the uncached one.
func TestCacheSoundness(t *testing.T) {
	plainExe := buildAuthExe(t, cacheLoopSrc)
	cases := []struct {
		name string
		pick corruptTarget
		want KillReason
	}{
		{
			name: "call MAC byte",
			pick: func(rec policy.AuthRecord, recAddr, strAddr uint32) uint32 { return recAddr + 16 },
			want: KillBadCallMAC,
		},
		{
			name: "record block ID",
			pick: func(rec policy.AuthRecord, recAddr, strAddr uint32) uint32 { return recAddr + 4 },
			want: KillBadCallMAC,
		},
		{
			name: "pred-set contents",
			pick: func(rec policy.AuthRecord, recAddr, strAddr uint32) uint32 { return rec.PredSetPtr },
			want: KillBadString,
		},
		{
			name: "string AS contents",
			pick: func(rec policy.AuthRecord, recAddr, strAddr uint32) uint32 { return strAddr },
			want: KillBadString,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			uncached := runCorrupted(t, plainExe, "", false, tc.pick)
			cached := runCorrupted(t, plainExe, "", true, tc.pick)
			if !uncached.Killed || uncached.KilledBy != tc.want {
				t.Fatalf("uncached: killed=%v by=%q want %q", uncached.Killed, uncached.KilledBy, tc.want)
			}
			if !cached.Killed || cached.KilledBy != uncached.KilledBy {
				t.Fatalf("cached: killed=%v by=%q, uncached by=%q", cached.Killed, cached.KilledBy, uncached.KilledBy)
			}
			if cached.CacheStats().Invalidations == 0 {
				t.Error("cached run recorded no invalidation")
			}
		})
	}
}

// buildPatternLoopExe installs cacheLoopPatternSrc with a pattern
// constraint on open's path argument.
func buildPatternLoopExe(t *testing.T, pat string) *binfmt.File {
	t.Helper()
	exe := buildExe(t, cacheLoopPatternSrc)
	out, _, _, err := installer.Install(exe, "patloop", installer.Options{
		Key: testKey,
		Patterns: map[string][]installer.ArgPattern{
			"open": {{Arg: 0, Pattern: pat}},
		},
	})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	return out
}

// TestCacheSoundnessPattern corrupts the pattern AS after the cache fill:
// the cached kernel must re-verify and kill exactly like the uncached one.
func TestCacheSoundnessPattern(t *testing.T) {
	exe := buildPatternLoopExe(t, "/tmp/*.txt")
	stdin := "/tmp/a.txt\n/tmp/b.txt\n"
	pick := corruptTarget(func(rec policy.AuthRecord, recAddr, strAddr uint32) uint32 {
		if len(rec.PatternPtrs) == 0 {
			t.Fatal("open record has no pattern")
		}
		return rec.PatternPtrs[0]
	})
	uncached := runCorrupted(t, exe, stdin, false, pick)
	cached := runCorrupted(t, exe, stdin, true, pick)
	if !uncached.Killed || uncached.KilledBy != KillBadString {
		t.Fatalf("uncached: killed=%v by=%q", uncached.Killed, uncached.KilledBy)
	}
	if !cached.Killed || cached.KilledBy != uncached.KilledBy {
		t.Fatalf("cached: killed=%v by=%q, uncached by=%q", cached.Killed, cached.KilledBy, uncached.KilledBy)
	}
}

// TestCacheBenignHits runs the untampered loop under the cache and checks
// the hit accounting: every site verifies fully once and hits thereafter.
func TestCacheBenignHits(t *testing.T) {
	k := newKernel(t, WithVerifyCache())
	p := runProc(t, k, buildAuthExe(t, cacheLoopSrc), "")
	if p.Killed {
		t.Fatalf("killed: %v (audit %v)", p.KilledBy, &k.Audit)
	}
	if !p.Exited || p.Code != 0 {
		t.Fatalf("exit=%v code=%d", p.Exited, p.Code)
	}
	// Sites: open, close (4 iterations each) and exit. Each misses once.
	cs := p.CacheStats()
	if want := uint64(3); cs.Misses != want {
		t.Errorf("CacheMisses = %d, want %d", cs.Misses, want)
	}
	if want := uint64(6); cs.Hits != want {
		t.Errorf("CacheHits = %d, want %d", cs.Hits, want)
	}
	if cs.Invalidations != 0 {
		t.Errorf("CacheInvalidations = %d, want 0", cs.Invalidations)
	}
	// The cached kernel must agree with the uncached one on observable
	// behaviour.
	ku := newKernel(t)
	pu := runProc(t, ku, buildAuthExe(t, cacheLoopSrc), "")
	if pu.Killed || pu.Code != p.Code {
		t.Fatalf("uncached run diverged: killed=%v code=%d", pu.Killed, pu.Code)
	}
	if p.VerifyCount != pu.VerifyCount {
		t.Errorf("VerifyCount diverged: cached=%d uncached=%d", p.VerifyCount, pu.VerifyCount)
	}
	if p.CPU.Cycles >= pu.CPU.Cycles {
		t.Errorf("cached run not cheaper: %d >= %d cycles", p.CPU.Cycles, pu.CPU.Cycles)
	}
}

// TestCacheDisabledByDefault double-checks the default configuration has
// no cache: every verification is a full one.
func TestCacheDisabledByDefault(t *testing.T) {
	k := newKernel(t)
	p := runProc(t, k, buildAuthExe(t, cacheLoopSrc), "")
	if cs := p.CacheStats(); cs != (CacheStats{}) {
		t.Fatalf("cache counters nonzero without WithVerifyCache: %+v", cs)
	}
}
