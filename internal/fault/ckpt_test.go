package fault

import (
	"bytes"
	"testing"

	"asc/internal/ckpt"
)

// TestCkptCampaignCells: the checkpoint fault classes achieve 100%
// detection — every trial fires, every tampered blob is rejected with
// the class's canonical reason, and every workload recovers warm — and
// the Kill and Deny cells are numerically identical.
func TestCkptCampaignCells(t *testing.T) {
	m, err := Run(Config{Seed: 11, Trials: 2, Classes: []Class{FlipCacheGen}})
	if err != nil {
		t.Fatal(err)
	}
	if fails := m.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.Error(f)
		}
	}

	const victims = 3
	if want := len(CkptClasses()) * victims * 2; len(m.Ckpt) != want {
		t.Fatalf("ckpt cells = %d, want %d", len(m.Ckpt), want)
	}
	exp := map[string][]string{}
	for _, class := range CkptClasses() {
		exp[string(class)] = CkptExpectation(class)
	}
	for _, c := range m.Ckpt {
		if c.Fired != c.Trials || c.Rejected != c.Trials || c.Recovered != c.Trials {
			t.Errorf("%s/%s/%s: fired=%d rejected=%d recovered=%d of %d trials",
				c.Class, c.Victim, c.Mode, c.Fired, c.Rejected, c.Recovered, c.Trials)
		}
		if c.WarmRestarts < c.Trials {
			t.Errorf("%s/%s/%s: %d warm restarts for %d trials", c.Class, c.Victim, c.Mode, c.WarmRestarts, c.Trials)
		}
		if c.ColdStarts != 0 {
			t.Errorf("%s/%s/%s: %d cold starts with an intact fallback", c.Class, c.Victim, c.Mode, c.ColdStarts)
		}
		for reason := range c.Reasons {
			ok := false
			for _, want := range exp[c.Class] {
				if reason == want {
					ok = true
				}
			}
			if !ok {
				t.Errorf("%s/%s/%s: reason %q outside %v", c.Class, c.Victim, c.Mode, reason, exp[c.Class])
			}
		}
	}
	// Kill/Deny parity, field for field (cells sort deny before kill).
	for i := 0; i+1 < len(m.Ckpt); i += 2 {
		deny, kill := m.Ckpt[i], m.Ckpt[i+1]
		deny.Mode, kill.Mode = "", ""
		if deny.Class != kill.Class || deny.Victim != kill.Victim ||
			deny.Rejected != kill.Rejected || deny.WarmRestarts != kill.WarmRestarts ||
			deny.ReplayCycles != kill.ReplayCycles {
			t.Errorf("mode parity broken: %+v vs %+v", deny, kill)
		}
	}
}

// TestCkptCampaignSkip: SkipCkpt omits the checkpoint cells entirely.
func TestCkptCampaignSkip(t *testing.T) {
	m, err := Run(Config{Seed: 11, Trials: 1, Classes: []Class{FlipCacheGen}, SkipCkpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Ckpt) != 0 {
		t.Errorf("SkipCkpt left %d ckpt cells", len(m.Ckpt))
	}
}

// TestCkptFaultTamper: the tamper hook's per-class transformations and
// its fire-once discipline, without running a campaign.
func TestCkptFaultTamper(t *testing.T) {
	chain := []ckpt.Entry{
		{Epoch: 3, Blob: bytes.Repeat([]byte{0xaa}, 200)},
		{Epoch: 2, Blob: bytes.Repeat([]byte{0xbb}, 200)},
		{Epoch: 1, Blob: bytes.Repeat([]byte{0xcc}, 200)},
	}
	donor := []ckpt.Entry{
		{Epoch: 3, Blob: bytes.Repeat([]byte{0xdd}, 150)},
	}

	torn := NewCkptFault(CkptTorn, 5, nil)
	out := torn.Tamper(chain, 0)
	if !torn.Fired() || len(out) >= len(chain[0].Blob) {
		t.Errorf("torn: fired=%v len=%d, want strict prefix", torn.Fired(), len(out))
	}
	if got := torn.Tamper(chain, 0); !bytes.Equal(got, chain[0].Blob) {
		t.Error("torn tampered twice")
	}

	flip := NewCkptFault(CkptFlip, 5, nil)
	out = flip.Tamper(chain, 0)
	if len(out) != len(chain[0].Blob) {
		t.Fatalf("flip changed length: %d", len(out))
	}
	var bits int
	for i := range out {
		b := out[i] ^ chain[0].Blob[i]
		for ; b != 0; b &= b - 1 {
			bits++
		}
	}
	if bits != 1 {
		t.Errorf("flip changed %d bits, want exactly 1", bits)
	}

	replay := NewCkptFault(CkptReplay, 5, nil)
	if got := replay.Tamper(chain[:1], 0); !bytes.Equal(got, chain[0].Blob) || replay.Fired() {
		t.Error("replay fired with nothing older to replay")
	}
	if got := replay.Tamper(chain, 0); !bytes.Equal(got, chain[1].Blob) || !replay.Fired() {
		t.Error("replay did not serve the older blob")
	}

	swap := NewCkptFault(CkptSwap, 5, donor)
	if got := swap.Tamper(chain, 0); !bytes.Equal(got, donor[0].Blob) || !swap.Fired() {
		t.Error("swap did not serve the donor blob")
	}
	noMatch := NewCkptFault(CkptSwap, 5, []ckpt.Entry{{Epoch: 9, Blob: donor[0].Blob}})
	if got := noMatch.Tamper(chain, 0); !bytes.Equal(got, chain[0].Blob) || noMatch.Fired() {
		t.Error("swap fired without an epoch-matching donor")
	}

	// Older entries always pass through pristine.
	fresh := NewCkptFault(CkptFlip, 5, nil)
	if got := fresh.Tamper(chain, 1); !bytes.Equal(got, chain[1].Blob) {
		t.Error("non-newest entry tampered")
	}
}
