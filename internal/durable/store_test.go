package durable

import (
	"errors"
	"fmt"
	"testing"

	"asc/internal/ckpt"
	"asc/internal/vfs"
)

func newStore(t *testing.T) (*vfs.FS, *Store) {
	t.Helper()
	fs := vfs.New()
	s, err := OpenStore(fs, StoreDir("/director", "p0"))
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return fs, s
}

func TestStoreSurvivesReopen(t *testing.T) {
	fs, s := newStore(t)
	for i := 1; i <= 4; i++ {
		if err := s.Put(uint64(i), []byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	// A fresh handle over the same directory — the takeover path — sees
	// the same chain and generation counter.
	s2, err := OpenStore(fs, StoreDir("/director", "p0"))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.Len() != 4 || s2.NewestEpoch() != 4 || s2.Gen() != 4 {
		t.Fatalf("reopen: len=%d newest=%d gen=%d, want 4/4/4", s2.Len(), s2.NewestEpoch(), s2.Gen())
	}
	chain := s2.Chain()
	if len(chain) != 4 || chain[0].Epoch != 4 || string(chain[0].Blob) != "blob-4" {
		t.Fatalf("chain after reopen: %+v", chain)
	}
	// Epoch ordering is enforced across handles.
	if err := s2.Put(3, []byte("stale")); !errors.Is(err, ckpt.ErrEpochOrder) {
		t.Fatalf("stale Put: %v, want ErrEpochOrder", err)
	}
}

func TestStorePruneAndGen(t *testing.T) {
	_, s := newStore(t)
	for i := 1; i <= 6; i++ {
		if err := s.Put(uint64(i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if got := s.Prune(2); got != 4 {
		t.Fatalf("Prune(2) dropped %d, want 4", got)
	}
	if s.Len() != 2 || s.NewestEpoch() != 6 {
		t.Fatalf("after prune: len=%d newest=%d", s.Len(), s.NewestEpoch())
	}
	// The generation counter keeps counting puts despite pruning.
	if s.Gen() != 6 {
		t.Fatalf("Gen after prune = %d, want 6", s.Gen())
	}
	if got := s.Prune(10); got != 0 {
		t.Fatalf("Prune(10) dropped %d, want 0", got)
	}
	if got := s.Prune(0); got != 2 {
		t.Fatalf("Prune(0) dropped %d, want 2", got)
	}
}

func TestStoreTamperHook(t *testing.T) {
	_, s := newStore(t)
	for i := 1; i <= 3; i++ {
		if err := s.Put(uint64(i), []byte{byte(i)}); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	s.Tamper = func(chain []ckpt.Entry, i int) []byte {
		if i == 0 {
			return []byte{0xff}
		}
		return chain[i].Blob
	}
	chain := s.Chain()
	if chain[0].Blob[0] != 0xff || chain[1].Blob[0] != 2 {
		t.Fatalf("tamper hook: %+v", chain)
	}
	// The stored files are untouched.
	s.Tamper = nil
	if chain := s.Chain(); chain[0].Blob[0] != 3 {
		t.Fatalf("pristine chain after hook removal: %+v", chain)
	}
}
