// paging.go is the kernel half of paged virtual memory: the mmap arena
// and its page table (installed at load time when the kernel runs
// WithPagedMemory), the clock eviction policy over a resident-page
// budget, and the authenticated swap device. Eviction seals each page
// with a per-page CMAC plus a kernel-held generation counter
// (internal/ckpt.SealSwapFrame — checkpoint/restore in miniature);
// fault-in re-verifies, so a flipped bit on the swap device fails the
// seal and a replayed stale page fails the generation comparison. The
// response to either goes through the same graded enforcement as a
// failed call verification: Kill terminates, Deny records the violation
// and delivers a zero page (the refused content never reaches the
// process), Audit records and likewise refuses the bytes.
package kernel

import (
	"errors"
	"strconv"

	"asc/internal/ckpt"
	"asc/internal/sys"
	"asc/internal/vm"
)

const (
	// minPageBudget is the smallest usable resident budget: one span may
	// touch two pages, and the pager must always find an evictable page
	// outside the faulting span.
	minPageBudget = 4
	// arenaPages sizes the mmap arena (1 MiB of 4 KiB pages), carved out
	// of the address space just below the stack.
	arenaPages = 256
	// SwapDir is the VFS directory holding sealed swap frames, one
	// subdirectory per PID.
	SwapDir = "/var/run/swap"
	// pageFaultNum is the pseudo syscall number used in audit records for
	// violations detected on the page-fault path (there is no system call
	// in flight).
	pageFaultNum uint16 = 0xffff
)

// SwapInjector is the fault-injection hook on the swap device's write
// path: it receives every sealed frame on its way to the device and may
// return a replacement blob (a bit-flipped copy, a captured stale
// frame). A nil return stores the frame unmodified.
type SwapInjector interface {
	SwapEvict(p *Process, page uint32, gen uint64, blob []byte) []byte
}

// pager services one process's page faults against the resident budget.
// It is per-process state (like the verify cache) driven only by the
// goroutine running the process; the VFS underneath is goroutine-safe,
// so concurrent paged processes may share one swap directory tree.
type pager struct {
	p      *Process
	k      *Kernel
	pt     *vm.PageTable
	budget int

	// gens[i] is the authoritative eviction generation of page i: the
	// value the next fault-in of that page must find inside the sealed
	// frame. 0 means never evicted (fault-in is zero-fill).
	gens []uint64

	resident int
	hand     int // clock hand, a page index

	dir     string
	dirMade bool

	faults  uint64 // page faults serviced
	evicts  uint64 // pages sealed out to the swap device
	swapins uint64 // pages verified back in (excludes zero-fill)
}

// PageStats reports the demand-paging counters: faults serviced, pages
// evicted to the swap device, and pages verified back in. All zero for
// a process on a non-paged kernel.
func (p *Process) PageStats() (faults, evicts, swapins uint64) {
	if p.pager == nil {
		return 0, 0, 0
	}
	return p.pager.faults, p.pager.evicts, p.pager.swapins
}

// installPaging maps the mmap arena and its page table into a freshly
// loaded address space (called from loadImage when the kernel runs
// WithPagedMemory).
func (p *Process) installPaging(mem *vm.Memory, arenaEnd uint32) {
	arenaStart := arenaEnd - arenaPages*vm.PageSize
	mem.Map(vm.Segment{
		Name: "mmap", Start: arenaStart, End: arenaEnd,
		Perms: vm.PermRead | vm.PermWrite | vm.PermExec,
	})
	pt := vm.NewPageTable(arenaStart, arenaPages)
	g := &pager{
		p: p, k: p.kern, pt: pt, budget: p.kern.pagedBudget,
		gens: make([]uint64, arenaPages),
		dir:  SwapDir + "/" + strconv.Itoa(p.PID),
	}
	mem.SetPaging(pt, g)
	p.pager = g
}

// frameBlocks is the AES cost (in blocks) of sealing or verifying one
// page frame: the page itself plus the bound header. The pager charges
// the batched per-block rate — a page is one contiguous message under a
// single key schedule, the same streaming discount as group-committed
// control-flow updates.
const frameBlocks = vm.PageSize/16 + 4

func (g *pager) chargeSeal() {
	if g.k.key == nil {
		return
	}
	g.p.CPU.Cycles += g.k.Costs.PerAESBlockBatched * frameBlocks
	g.p.VerifyAESBlocks += frameBlocks
}

// PageFault implements vm.PageFaulter: it makes every mapped,
// non-present page of [addr, addr+n) resident, evicting pages outside
// the span as the budget requires.
func (g *pager) PageFault(addr, n uint32, access uint8) error {
	first, ok := g.pt.Index(addr)
	if !ok {
		return &vm.Fault{Addr: addr, Msg: "page fault outside the mmap arena"}
	}
	last, ok := g.pt.Index(addr + n - 1)
	if !ok {
		return &vm.Fault{Addr: addr, Msg: "page fault span leaves the mmap arena"}
	}
	for i := first; i <= last; i++ {
		f := g.pt.Flags(i)
		if f&vm.PageMapped == 0 || f&vm.PagePresent != 0 {
			continue
		}
		for g.resident >= g.budget {
			if err := g.evictOne(first, last); err != nil {
				return err
			}
		}
		if err := g.faultIn(i); err != nil {
			return err
		}
	}
	return nil
}

// evictOne runs the clock second-chance scan and seals one victim page
// out to the swap device. Pages in [skipFirst, skipLast] (the faulting
// span) are never victims.
func (g *pager) evictOne(skipFirst, skipLast int) error {
	n := g.pt.NumPages()
	for scanned := 0; scanned < 2*n+1; scanned++ {
		i := g.hand
		g.hand = (g.hand + 1) % n
		f := g.pt.Flags(i)
		if f&vm.PagePresent == 0 || (i >= skipFirst && i <= skipLast) {
			continue
		}
		if f&vm.PageAccessed != 0 {
			g.pt.SetFlags(i, f&^vm.PageAccessed)
			continue
		}
		return g.evict(i)
	}
	return &vm.Fault{Addr: g.pt.Base(), Msg: "no evictable page (working set exceeds the resident budget)"}
}

// evict seals page i and writes the frame to the swap device.
func (g *pager) evict(i int) error {
	g.p.CPU.Cycles += g.k.Costs.PageEvict
	g.evicts++
	g.gens[i]++
	data, err := g.p.Mem.RawRead(g.pt.PageAddr(i), vm.PageSize)
	if err != nil {
		return err
	}
	blob := ckpt.SealSwapFrame(g.k.key, &ckpt.SwapFrame{
		Owner: uint64(g.p.PID), Page: uint32(i), Gen: g.gens[i], Data: data,
	})
	g.chargeSeal()
	if si, ok := g.k.injector.(SwapInjector); ok && g.k.injector != nil {
		if nb := si.SwapEvict(g.p, uint32(i), g.gens[i], blob); nb != nil {
			blob = nb
		}
	}
	if !g.dirMade {
		if err := g.k.FS.MkdirAll(g.dir, 0o700); err != nil {
			return &vm.Fault{Addr: g.pt.PageAddr(i), Msg: "swap device: " + err.Error()}
		}
		g.dirMade = true
	}
	if err := g.k.FS.WriteFile(g.framePath(i), blob, 0o600); err != nil {
		return &vm.Fault{Addr: g.pt.PageAddr(i), Msg: "swap device: " + err.Error()}
	}
	// Scrub the frame so any access that skips the paging check reads
	// zeros, not stale secrets.
	if err := g.p.Mem.RawWrite(g.pt.PageAddr(i), zeroPage[:]); err != nil {
		return err
	}
	g.pt.SetFlags(i, g.pt.Flags(i)&^(vm.PagePresent|vm.PageAccessed|vm.PageDirty))
	g.resident--
	return nil
}

var zeroPage [vm.PageSize]byte

// faultIn makes page i resident: zero fill if it was never evicted,
// otherwise read its frame from the swap device and verify the seal and
// generation before the bytes reach the process.
func (g *pager) faultIn(i int) error {
	g.p.CPU.Cycles += g.k.Costs.PageFault
	g.faults++
	addr := g.pt.PageAddr(i)
	if g.gens[i] == 0 {
		if err := g.p.Mem.RawWrite(addr, zeroPage[:]); err != nil {
			return err
		}
		g.pt.SetFlags(i, g.pt.Flags(i)|vm.PagePresent)
		g.resident++
		return nil
	}
	blob, err := g.k.FS.ReadFile(g.framePath(i))
	if err != nil {
		return g.tamper(i, ckpt.ErrSwapSeal)
	}
	g.chargeSeal()
	f, err := ckpt.OpenSwapFrame(g.k.key, uint64(g.p.PID), uint32(i), g.gens[i], blob)
	if err != nil {
		return g.tamper(i, err)
	}
	if len(f.Data) != vm.PageSize {
		return g.tamper(i, ckpt.ErrSwapSeal)
	}
	if err := g.p.Mem.RawWrite(addr, f.Data); err != nil {
		return err
	}
	g.swapins++
	g.pt.SetFlags(i, g.pt.Flags(i)|vm.PagePresent)
	g.resident++
	return nil
}

// tamper applies the process's enforcement mode to a swap verification
// failure detected while servicing the fault on page i. Kill halts the
// process (the returned error unwinds the in-flight instruction); Deny
// and Audit record the violation, refuse the unverifiable bytes, and
// deliver a zero page so the process keeps running — the paged analogue
// of refusing a call with EPERM.
func (g *pager) tamper(i int, cause error) error {
	reason := KillSwapSeal
	if errors.Is(cause, ckpt.ErrSwapStale) {
		reason = KillSwapReplay
	}
	p, k, addr := g.p, g.k, g.pt.PageAddr(i)
	if p.Enforcement == EnforceKill {
		k.kill(p, pageFaultNum, addr, reason)
		p.CPU.Halted = true
		return &vm.Fault{Addr: addr, Msg: "killed: " + string(reason)}
	}
	if p.Enforcement == EnforceDeny {
		p.DeniedCount++
		k.record(p, pageFaultNum, addr, reason, ActionDeny)
	} else {
		p.AuditedCount++
		k.record(p, pageFaultNum, addr, reason, ActionAudit)
	}
	// The frame is gone as far as this process is concerned: deliver a
	// zero page and retire the generation so later faults do not re-read
	// the tampered frame.
	if err := g.p.Mem.RawWrite(addr, zeroPage[:]); err != nil {
		return err
	}
	g.gens[i] = 0
	g.pt.SetFlags(i, g.pt.Flags(i)|vm.PagePresent)
	g.resident++
	p.Mem.BumpGeneration(addr, vm.PageSize)
	return nil
}

func (g *pager) framePath(i int) string {
	return g.dir + "/" + strconv.Itoa(i)
}

// protToPage translates mmap PROT_* bits into page flags; ok is false
// when prot carries bits outside PROT_READ|PROT_WRITE|PROT_EXEC.
func protToPage(prot uint32) (vm.PageFlags, bool) {
	if prot&^uint32(sys.ProtRead|sys.ProtWrite|sys.ProtExec) != 0 {
		return 0, false
	}
	var f vm.PageFlags
	if prot&sys.ProtRead != 0 {
		f |= vm.PageRead
	}
	if prot&sys.ProtWrite != 0 {
		f |= vm.PageWrite
	}
	if prot&sys.ProtExec != 0 {
		f |= vm.PageExec
	}
	return f, true
}

// sysMmapPaged is mmap(2) on the paged arena: anonymous private
// mappings only, placed first-fit. The protection argument is a
// policy-constrained immediate in authenticated binaries (MOVI-loaded
// constants are bound by the call MAC), so a tampered PROT value fails
// call verification before this handler runs.
func (k *Kernel) sysMmapPaged(p *Process, addr, length, prot, flags, fd uint32) uint32 {
	g := p.pager
	pf, ok := protToPage(prot)
	if !ok || length == 0 || addr != 0 {
		return errno(sys.EINVAL)
	}
	if flags&sys.MapAnonymous == 0 {
		return errno(sys.ENOSYS) // file-backed mappings are not modeled
	}
	_ = fd // ignored for anonymous mappings, as on Linux
	npages := int((uint64(length) + vm.PageSize - 1) / vm.PageSize)
	if npages > g.pt.NumPages() {
		return errno(sys.ENOMEM)
	}
	run := 0
	for i := 0; i < g.pt.NumPages(); i++ {
		if g.pt.Flags(i)&vm.PageMapped != 0 {
			run = 0
			continue
		}
		run++
		if run == npages {
			start := i - npages + 1
			for j := start; j <= i; j++ {
				g.pt.SetFlags(j, vm.PageMapped|pf)
				g.gens[j] = 0
			}
			return g.pt.PageAddr(start)
		}
	}
	return errno(sys.ENOMEM)
}

// arenaRange validates an (addr, length) pair as a page-aligned,
// fully-mapped page range of the arena.
func (g *pager) arenaRange(addr, length uint32) (first, last int, ok bool) {
	if length == 0 || addr&(vm.PageSize-1) != 0 {
		return 0, 0, false
	}
	first, ok = g.pt.Index(addr)
	if !ok {
		return 0, 0, false
	}
	end := uint64(addr) + uint64(length)
	if end > uint64(g.pt.End()) {
		return 0, 0, false
	}
	last = int((uint32(end) - 1 - g.pt.Base()) >> vm.PageShift)
	for i := first; i <= last; i++ {
		if g.pt.Flags(i)&vm.PageMapped == 0 {
			return 0, 0, false
		}
	}
	return first, last, true
}

// sysMunmapPaged unmaps a page range: resident pages are dropped (not
// sealed out), swap residue is unlinked, and generations reset so a
// later mapping of the same pages starts zero-filled.
func (k *Kernel) sysMunmapPaged(p *Process, addr, length uint32) uint32 {
	g := p.pager
	first, last, ok := g.arenaRange(addr, length)
	if !ok {
		return errno(sys.EINVAL)
	}
	for i := first; i <= last; i++ {
		f := g.pt.Flags(i)
		if f&vm.PagePresent != 0 {
			g.resident--
			// Scrub so a future mapping cannot read the dead bytes.
			if err := p.Mem.RawWrite(g.pt.PageAddr(i), zeroPage[:]); err != nil {
				return errno(sys.EFAULT)
			}
		}
		if g.gens[i] != 0 {
			_ = k.FS.Unlink(g.framePath(i))
		}
		g.gens[i] = 0
		g.pt.SetFlags(i, 0)
	}
	return 0
}

// sysMprotectPaged rewrites the protection bits of a mapped page range;
// present/accessed/dirty state and swap generations are untouched.
func (k *Kernel) sysMprotectPaged(p *Process, addr, length, prot uint32) uint32 {
	g := p.pager
	pf, ok := protToPage(prot)
	if !ok {
		return errno(sys.EINVAL)
	}
	first, last, ok2 := g.arenaRange(addr, length)
	if !ok2 {
		return errno(sys.EINVAL)
	}
	for i := first; i <= last; i++ {
		f := g.pt.Flags(i)
		g.pt.SetFlags(i, (f&^vm.PageProtMask)|pf)
	}
	return 0
}
