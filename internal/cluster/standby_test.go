package cluster

import (
	"errors"
	"testing"

	"asc/internal/durable"
)

// haConfig is testConfig plus a durable control plane.
func haConfig(nodes int) Config {
	cfg := testConfig(nodes)
	cfg.DurableDir = "/director"
	return cfg
}

// TestTakeoverReattachesFleet: the director dies mid-fleet with a warm
// standby attached. The standby notices the missed beats, replays the
// WAL, and re-attaches every process live on its surviving node — no
// checkpoint is touched, no cycle is re-executed, and every output
// matches the single-node reference.
func TestTakeoverReattachesFleet(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	h, err := NewHA(HAConfig{
		Cluster: haConfig(3),
		Standby: true,
		OnTick: func(h *HA, tick int) {
			if tick == 6 {
				h.CrashPrimary()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(fleet(exe, 5))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep.Fleet, ref)
	if rep.DirectorLost {
		t.Fatal("director lost despite standby")
	}
	if rep.CrashTick != 6 || rep.TakeoverTick < 0 {
		t.Fatalf("crash/takeover ticks = %d/%d", rep.CrashTick, rep.TakeoverTick)
	}
	if rep.DetectTicks < 1 {
		t.Errorf("DetectTicks = %d, want ≥ 1", rep.DetectTicks)
	}
	if rep.Term != 2 {
		t.Errorf("Term = %d, want 2 (one takeover)", rep.Term)
	}
	if rep.Reattached != 5 || rep.Restored != 0 {
		t.Errorf("reattached/restored = %d/%d, want 5/0", rep.Reattached, rep.Restored)
	}
	if rep.WALRecords == 0 {
		t.Error("takeover replayed zero WAL records")
	}
	for _, pr := range rep.Fleet.Procs {
		if pr.ColdStarts != 0 {
			t.Errorf("%s: %d cold starts across a director takeover", pr.Name, pr.ColdStarts)
		}
	}
}

// TestTakeoverMidMigration: the director crashes in the worst window —
// checkpoint durable, source fenced, zero bytes transferred. The
// standby replays the export fence and finishes the job warm from the
// persistent store; everything else re-attaches.
func TestTakeoverMidMigration(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	h, err := NewHA(HAConfig{
		Cluster: haConfig(3),
		Standby: true,
		OnTick: func(h *HA, tick int) {
			if tick == 6 {
				opts := CleanMigrate()
				opts.CrashDirector = true
				if _, err := h.Primary.Migrate("p0", 3, opts); err != nil {
					t.Fatalf("Migrate: %v", err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(fleet(exe, 5))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep.Fleet, ref)
	if rep.Term != 2 || rep.DirectorLost {
		t.Fatalf("Term = %d, lost = %v", rep.Term, rep.DirectorLost)
	}
	if rep.Reattached != 4 || rep.Restored != 1 {
		t.Errorf("reattached/restored = %d/%d, want 4/1", rep.Reattached, rep.Restored)
	}
	p0 := rep.Fleet.Procs[0]
	if p0.WarmRestarts == 0 {
		t.Errorf("p0: finished the torn migration without a warm restart: %+v", p0)
	}
	if p0.ColdStarts != 0 {
		t.Errorf("p0: %d cold starts with a durable checkpoint", p0.ColdStarts)
	}
	for _, pr := range rep.Fleet.Procs {
		if pr.ColdStarts != 0 {
			t.Errorf("%s: cold start across mid-migration takeover", pr.Name)
		}
	}
}

// TestTakeoverRecoversTornWALTail: the director dies mid-append,
// leaving a torn final frame. Takeover truncates the tear, replays the
// valid prefix, and the fleet still completes with reference outputs.
func TestTakeoverRecoversTornWALTail(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	h, err := NewHA(HAConfig{
		Cluster: haConfig(3),
		Standby: true,
		OnTick: func(h *HA, tick int) {
			if tick == 6 {
				h.CrashPrimary()
				if err := durable.Tear(h.Primary.FS, "/director", testKey); err != nil {
					t.Fatalf("Tear: %v", err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(fleet(exe, 4))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep.Fleet, ref)
	if !rep.WALTorn {
		t.Error("takeover did not report the torn tail")
	}
	if rep.Term != 2 {
		t.Errorf("Term = %d, want 2", rep.Term)
	}
	for _, pr := range rep.Fleet.Procs {
		if pr.ColdStarts != 0 {
			t.Errorf("%s: cold start after torn-tail recovery", pr.Name)
		}
	}
}

// TestDirectorLossWithoutStandby: the same crash with no standby is a
// detected, reported loss — every unfinished process ends with
// ErrDirectorLost, never a silent hang or a fabricated result.
func TestDirectorLossWithoutStandby(t *testing.T) {
	exe := buildGuest(t)
	h, err := NewHA(HAConfig{
		Cluster: haConfig(3),
		OnTick: func(h *HA, tick int) {
			if tick == 6 {
				h.CrashPrimary()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(fleet(exe, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.DirectorLost {
		t.Fatal("DirectorLost not reported")
	}
	if rep.Term != 1 {
		t.Errorf("Term = %d, want 1 (no takeover)", rep.Term)
	}
	for _, pr := range rep.Fleet.Procs {
		if !errors.Is(pr.Err, ErrDirectorLost) {
			t.Errorf("%s: err = %v, want ErrDirectorLost", pr.Name, pr.Err)
		}
	}
}

// TestHealthyHAMatchesPlainDirector: with a standby attached but no
// crash, the HA harness is a bystander — same outputs, term 1, no
// takeover accounting.
func TestHealthyHAMatchesPlainDirector(t *testing.T) {
	exe := buildGuest(t)
	ref := refRun(t, exe)
	h, err := NewHA(HAConfig{Cluster: haConfig(3), Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Run(fleet(exe, 5))
	if err != nil {
		t.Fatal(err)
	}
	checkFleetOutputs(t, rep.Fleet, ref)
	if rep.Term != 1 || rep.CrashTick != -1 || rep.TakeoverTick != -1 {
		t.Errorf("healthy HA: term %d crash %d takeover %d", rep.Term, rep.CrashTick, rep.TakeoverTick)
	}
	if rep.Reattached != 0 || rep.Restored != 0 || rep.WALTorn {
		t.Errorf("healthy HA: spurious recovery accounting %+v", rep)
	}
}

// TestDurableStoreSurvivesAcrossDirectors: checkpoint stores under
// DurableDir persist on the shared filesystem — a takeover director
// reopening them sees the primary's sealed epochs and the fence still
// refuses stale ones.
func TestDurableStoreSurvivesAcrossDirectors(t *testing.T) {
	exe := buildGuest(t)
	cfg := haConfig(2)
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run(fleet(exe, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range rep.Procs {
		if pr.Checkpoints == 0 {
			t.Fatalf("%s: no checkpoints sealed", pr.Name)
		}
	}
	// Reopen one store the way a successor would.
	st, err := durable.OpenStore(d.FS, durable.StoreDir(cfg.DurableDir, "p0"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 || st.NewestEpoch() == 0 {
		t.Fatalf("reopened store empty: len=%d newest=%d", st.Len(), st.NewestEpoch())
	}
	if err := st.Put(st.NewestEpoch(), []byte("stale")); err == nil {
		t.Error("reopened store accepted a non-increasing epoch")
	}
}
