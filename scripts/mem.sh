#!/bin/sh
# mem.sh — regenerate BENCH_mem.json: the paged-memory working-set
# sweep (resident budget x working set, with the authenticated swap
# device off, enforced, and enforced with the verify cache). The
# figures are computed from deterministic cycle counts, so two
# consecutive runs produce byte-identical JSON.
#
# Refuses to overwrite an uncommitted BENCH_mem.json unless FORCE=1,
# so a locally modified artifact is never clobbered silently.
set -eu

cd "$(dirname "$0")/.."

if git diff --quiet -- BENCH_mem.json 2>/dev/null; then
    : # clean (or not yet tracked with changes): safe to regenerate
elif [ "${FORCE:-0}" = "1" ]; then
    echo "mem.sh: BENCH_mem.json is dirty; overwriting (FORCE=1)" >&2
else
    echo "mem.sh: BENCH_mem.json has uncommitted changes; commit them or rerun with FORCE=1" >&2
    exit 1
fi

go run ./cmd/ascbench -table mem -json BENCH_mem.json
echo "wrote BENCH_mem.json"
