GO ?= go

.PHONY: build test bench fault check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench 'SyscallPlain|SyscallVerified|VerifyAllocs' \
		-benchtime 2x ./internal/kernel

# fault runs the deterministic fault-injection campaign and emits the
# machine-readable matrix (same seed -> byte-identical JSON).
fault:
	$(GO) run ./cmd/ascfault -seed 1 -trials 3 -json BENCH_fault.json

# check is the full gate: gofmt, vet, build, race tests, the fuzz smoke,
# the kernel benchmarks, the fault campaign, and the machine-readable
# summaries (BENCH_kernel.json, BENCH_fault.json).
check:
	sh scripts/check.sh

clean:
	rm -f BENCH_kernel.json BENCH_fault.json
