package systrace

import (
	"testing"

	"asc/internal/asm"
	"asc/internal/binfmt"
	"asc/internal/kernel"
	"asc/internal/libc"
	"asc/internal/linker"
	"asc/internal/vfs"
)

// condSrc reads one byte from stdin: on 'y' it takes a rare path that
// mkdirs; otherwise it just writes. Training that never supplies 'y'
// misses mkdir.
const condSrc = `
        .text
        .global main
main:
        SUBI sp, sp, 16
        MOVI r1, 0
        MOV r2, sp
        MOVI r3, 1
        CALL read
        LOADB r7, [sp+0]
        MOVI r8, 121            ; 'y'
        BEQ r7, r8, .rare
        MOVI r1, msg
        CALL puts
        JMP .done
.rare:
        MOVI r1, dir
        MOVI r2, 493
        CALL mkdir
.done:
        ADDI sp, sp, 16
        MOVI r0, 0
        RET
        .rodata
msg:    .asciz "common\n"
dir:    .asciz "/tmp/rare"
`

func buildExe(t *testing.T, src string, os libc.OS) *binfmt.File {
	t.Helper()
	main, err := asm.Assemble("main.s", src)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := libc.Objects(os)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := linker.Link([]*binfmt.File{main}, lib)
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestTrainingMissesRarePaths(t *testing.T) {
	exe := buildExe(t, condSrc, libc.Linux)
	pol, err := Train(exe, "cond", []Input{{Stdin: "n"}, {Stdin: "x"}}, TrainConfig{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	for _, want := range []string{"read", "write", "exit"} {
		if !pol.Permits(want) {
			t.Errorf("trained policy missing %s: %v", want, pol.Names())
		}
	}
	if pol.Permits("mkdir") {
		t.Error("trained policy contains mkdir although no input exercised it")
	}
	// Train again with the rare input: now mkdir appears.
	pol2, err := Train(exe, "cond", []Input{{Stdin: "n"}, {Stdin: "y"}}, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !pol2.Permits("mkdir") {
		t.Errorf("policy with rare input missing mkdir: %v", pol2.Names())
	}
}

func TestGeneralizeFS(t *testing.T) {
	pol := &Policy{Program: "x", Allowed: map[string]bool{
		"read": true, "open": true, "mkdir": true, "getpid": true,
	}}
	pol.GeneralizeFS()
	// Concrete fs calls got folded into aliases.
	if pol.Allowed["read"] || pol.Allowed["mkdir"] {
		t.Errorf("concrete fs calls remain: %v", pol.Names())
	}
	if !pol.Allowed["getpid"] {
		t.Error("non-fs call dropped")
	}
	// Aliases now permit calls never observed — the unneeded-call effect.
	for _, n := range []string{"read", "open", "mkdir", "rmdir", "unlink", "readlink"} {
		if !pol.Permits(n) {
			t.Errorf("generalized policy does not permit %s", n)
		}
	}
	if pol.Permits("socket") {
		t.Error("generalized policy permits socket")
	}
	names := pol.ExpandedNames()
	if len(names) < 10 {
		t.Errorf("expanded names too few: %v", names)
	}
}

func TestDaemonMonitorEnforcesAndCharges(t *testing.T) {
	exe := buildExe(t, condSrc, libc.Linux)
	pol, err := Train(exe, "cond", []Input{{Stdin: "n"}}, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Enforce the trained policy via the daemon model; feed the rare
	// input so mkdir (not in policy) fires: false alarm, process killed.
	fs := vfs.New()
	if err := fs.Mkdir("/tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	k, err := kernel.New(fs, nil, kernel.WithMode(kernel.Permissive))
	if err != nil {
		t.Fatal(err)
	}
	k.MonitorOverhead = pol.DaemonMonitor(k.Costs)
	p, err := k.Spawn(exe, "cond")
	if err != nil {
		t.Fatal(err)
	}
	p.Stdin = []byte("y")
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed {
		t.Error("mkdir outside trained policy was allowed (no false alarm)")
	}

	// The daemon cost must exceed the in-kernel table cost.
	run := func(mon func(*kernel.Process, uint16, uint32) (uint64, bool)) uint64 {
		fs := vfs.New()
		_ = fs.Mkdir("/tmp", 0o755)
		k, err := kernel.New(fs, nil, kernel.WithMode(kernel.Permissive))
		if err != nil {
			t.Fatal(err)
		}
		k.MonitorOverhead = mon
		p, err := k.Spawn(exe, "cond")
		if err != nil {
			t.Fatal(err)
		}
		p.Stdin = []byte("n")
		if err := k.Run(p, 100_000_000); err != nil {
			t.Fatal(err)
		}
		return p.CPU.Cycles
	}
	daemon := run(pol.DaemonMonitor(kernel.DefaultCosts))
	inKernel := run(pol.InKernelMonitor())
	if daemon <= inKernel {
		t.Errorf("daemon cycles %d <= in-kernel %d", daemon, inKernel)
	}
}

func TestOpenBSDTrainingSeesMmapNotIndirect(t *testing.T) {
	src := `
        .text
        .global main
main:
        MOVI r1, 0
        MOVI r2, 4096
        MOVI r3, 3
        MOVI r4, 0
        MOVI r5, 0
        CALL mmap
        MOVI r0, 0
        RET
`
	exe := buildExe(t, src, libc.OpenBSD)
	pol, err := Train(exe, "m", nil, TrainConfig{Personality: kernel.OpenBSD})
	if err != nil {
		t.Fatal(err)
	}
	if !pol.Permits("mmap") {
		t.Errorf("trained policy missing mmap: %v", pol.Names())
	}
	if pol.Permits("__syscall") {
		t.Error("trained policy exposes __syscall (should be hidden, Table 2)")
	}
}
