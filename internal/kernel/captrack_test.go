package kernel

import (
	"testing"

	"asc/internal/binfmt"
	"asc/internal/installer"
)

// fdVictimSrc reads a descriptor number from input and reads from it —
// the §5.3 scenario: without capability tracking, a compromised program
// could use any descriptor number; with it, only live descriptors from
// its own opens pass.
const fdVictimSrc = `
        .text
        .global main
main:
        PUSH fp
        MOV fp, sp
        ; open the legitimate data file
        MOVI r1, datap
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOV r10, r0
        ; read the fd to use from stdin (attacker-controlled)
        SUBI sp, sp, 32
        MOV r1, sp
        CALL gets
        MOV r1, sp
        CALL atoi
        MOV r11, r0
        ADDI sp, sp, 32
        ; 0 means "use the fd open returned"
        MOVI r7, 0
        BNE r11, r7, .useinput
        MOV r11, r10
.useinput:
        ; read(fd, buf, 8)
        MOV r1, r11
        MOVI r2, buf
        MOVI r3, 8
        CALL read
        MOVI r1, buf
        CALL puts
        ; close and exit
        MOV r1, r10
        CALL close
        POP fp
        MOVI r0, 0
        RET
        .rodata
datap:  .asciz "/data/file"
        .bss
buf:    .space 16
`

func buildFDVictim(t *testing.T) *binfmt.File {
	t.Helper()
	exe := buildExe(t, fdVictimSrc)
	out, pp, rep, err := installer.Install(exe, "fdvictim", installer.Options{
		Key:      testKey,
		TrackFDs: true,
	})
	if err != nil {
		t.Fatalf("Install: %v", err)
	}
	if rep.FDArgs == 0 {
		t.Fatalf("no fd args in report: %+v", rep)
	}
	tracked := false
	for _, sp := range pp.Sites {
		for _, a := range sp.Args {
			if a.Tracked {
				tracked = true
			}
		}
	}
	if !tracked {
		t.Fatal("no tracked arguments in policy")
	}
	if _, ok := out.SymbolAddr("__asc_fdset"); !ok {
		t.Fatal("__asc_fdset symbol missing")
	}
	return out
}

func newFDKernel(t *testing.T) *Kernel {
	t.Helper()
	k := newKernel(t)
	if err := k.FS.MkdirAll("/data", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile("/data/file", []byte("CONTENTS"), 0o644); err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCapTrackingAllowsLegitimateFD(t *testing.T) {
	k := newFDKernel(t)
	p, err := k.Spawn(buildFDVictim(t), "fdvictim")
	if err != nil {
		t.Fatal(err)
	}
	p.Stdin = []byte("0\n") // use the fd returned by open
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if p.Killed {
		t.Fatalf("legitimate fd killed: %v (audit %v)", p.KilledBy, &k.Audit)
	}
	if p.Output() != "CONTENTS" {
		t.Errorf("output %q", p.Output())
	}
}

func TestCapTrackingBlocksForgedFD(t *testing.T) {
	k := newFDKernel(t)
	p, err := k.Spawn(buildFDVictim(t), "fdvictim")
	if err != nil {
		t.Fatal(err)
	}
	// The attacker supplies a descriptor number that was never opened.
	p.Stdin = []byte("7\n")
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed || p.KilledBy != KillBadCapability {
		t.Fatalf("killed=%v by=%q (audit %v)", p.Killed, p.KilledBy, &k.Audit)
	}
}

func TestCapTrackingClosedFDRejected(t *testing.T) {
	// A program that closes its fd and then reads from it: use-after-
	// close is rejected by the capability check.
	src := `
        .text
        .global main
main:
        MOVI r1, datap
        MOVI r2, 0
        MOVI r3, 0
        CALL open
        MOV r10, r0
        MOV r1, r10
        CALL close
        MOV r1, r10
        MOVI r2, buf
        MOVI r3, 8
        CALL read
        MOVI r0, 0
        RET
        .rodata
datap:  .asciz "/data/file"
        .bss
buf:    .space 16
`
	exe := buildExe(t, src)
	out, _, _, err := installer.Install(exe, "uac", installer.Options{Key: testKey, TrackFDs: true})
	if err != nil {
		t.Fatal(err)
	}
	k := newFDKernel(t)
	p, err := k.Spawn(out, "uac")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed || p.KilledBy != KillBadCapability {
		t.Fatalf("use-after-close: killed=%v by=%q", p.Killed, p.KilledBy)
	}
}

func TestCapTrackingSetTamperKilled(t *testing.T) {
	// Forging an entry in the in-application capability set is caught by
	// the memory checker.
	exe := buildFDVictim(t)
	fdAddr, _ := exe.SymbolAddr("__asc_fdset")
	k := newFDKernel(t)
	p, err := k.Spawn(exe, "fdvictim")
	if err != nil {
		t.Fatal(err)
	}
	// Pre-poke: count=4, extra fd 7 at slot 3.
	if err := p.Mem.KernelStore32(fdAddr, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.Mem.KernelStore32(fdAddr+4+3*4, 7); err != nil {
		t.Fatal(err)
	}
	p.Stdin = []byte("7\n")
	if err := k.Run(p, 100_000_000); err != nil {
		t.Fatal(err)
	}
	if !p.Killed || p.KilledBy != KillBadState {
		t.Fatalf("forged set: killed=%v by=%q", p.Killed, p.KilledBy)
	}
}
