// Network attacks: the socket syscall family widens the authenticated
// surface, and each widening gets an attack probing it. The victims run
// on a loopback network over a socketpair (no peer process needed), so
// the experiments stay single-process like the rest of the battery.
//
//   - Forged send site: overwrite the victim's sendto auth record with a
//     write record harvested from a donor program. Blocked because the
//     donor's MAC covers the donor's call encoding, not a sendto at this
//     site.
//   - Destination tampering: patch the installed MOVI that loads the
//     constant packed sockaddr, redirecting the victim's traffic to a
//     different port. The code runs — nothing re-verifies text — but the
//     live register no longer matches the policy-constrained immediate
//     covered by the call MAC.
//   - Control-flow state replay: guest code snapshots the 20-byte
//     {lastBlock, MAC} policy state of its recvfrom site (the .auth
//     section is app-writable by design — the monitor assumes a
//     compromised application can scribble anywhere in its own memory),
//     lets one more recvfrom advance it, then stores the stale bytes
//     back. Blocked by the memory checker: the rolled-back MAC was
//     computed against an older value of the kernel's private counter.
package attack

import (
	"fmt"

	"asc/internal/binfmt"
	"asc/internal/cfg"
	"asc/internal/installer"
	"asc/internal/isa"
	"asc/internal/kernel"
	anet "asc/internal/net"
	"asc/internal/sys"
)

// netVictimSource pumps one constant payload across a socketpair: a
// sendto with an authenticated-string payload and a constant packed
// destination address, then the matching recvfrom.
const netVictimSource = `
        .text
        .global main
main:
        MOVI r1, 1
        MOVI r2, 1
        MOVI r3, 0
        MOVI r4, pairbuf
        CALL socketpair
        MOVI r7, pairbuf
        LOAD r15, [r7+0]
        LOAD r13, [r7+4]
        MOV r1, r15
        MOVI r2, pmsg
        MOVI r3, 8
        MOVI r4, 0
        MOVI r5, 0x02000007     ; packed AF_INET sockaddr, port 7
        CALL sendto
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        MOVI r1, donemsg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
pmsg:   .asciz "payload"
donemsg: .asciz "net victim done\n"
        .bss
pairbuf: .space 8
iobuf:  .space 64
`

// netRouteSource is a miniature LB client: a two-entry replica route
// table rendered the way the sharded workload renders it — each send
// site loads its replica's packed sockaddr as a MOVI immediate. The
// socketpair stands in for the fleet so the experiment stays
// single-process; what matters is that the route constants are
// policy-constrained immediates, exactly as in NetLBClientSource.
const netRouteSource = `
        .text
        .global main
main:
        MOVI r1, 1
        MOVI r2, 1
        MOVI r3, 0
        MOVI r4, pairbuf
        CALL socketpair
        MOVI r7, pairbuf
        LOAD r15, [r7+0]
        LOAD r13, [r7+4]
        MOV r1, r15
        MOVI r2, req0
        MOVI r3, 10
        MOVI r4, 0
        MOVI r5, 0x02001f40     ; route: replica 0, port 8000
        CALL sendto
        MOV r1, r15
        MOVI r2, req1
        MOVI r3, 10
        MOVI r4, 0
        MOVI r5, 0x02001f41     ; route: replica 1, port 8001
        CALL sendto
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom
        MOVI r1, donemsg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
req0:   .asciz "S0aaaaaaaa"
req1:   .asciz "S4aaaaaaaa"
donemsg: .asciz "routes done\n"
        .bss
pairbuf: .space 8
iobuf:  .space 64
`

// netReplaySource is the control-flow replay victim. It queues three
// messages, then around its second recvfrom saves and restores the
// site's policy state: after a CALL to an installed stub, r6 still
// holds that site's auth record address, and the record's word at
// offset 12 points at the {lastBlock, MAC} state in .auth.
const netReplaySource = `
        .text
        .global main
main:
        MOVI r1, 1
        MOVI r2, 1
        MOVI r3, 0
        MOVI r4, pairbuf
        CALL socketpair
        MOVI r7, pairbuf
        LOAD r15, [r7+0]
        LOAD r13, [r7+4]
        ; queue three messages so no recvfrom ever blocks
        MOVI r11, 3
.fill:
        MOVI r7, 0
        BEQ r11, r7, .drain
        MOV r1, r15
        MOVI r2, pmsg
        MOVI r3, 8
        MOVI r4, 0
        MOVI r5, 0x02000007
        CALL sendto
        ADDI r11, r11, -1
        JMP .fill
.drain:
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom           ; #1: r6 = the recvfrom site's record
        LOAD r11, [r6+12]       ; r11 = LbPtr (policy state address)
        MOVI r8, save           ; snapshot the 20-byte policy state
        LOAD r7, [r11+0]
        STORE [r8+0], r7
        LOAD r7, [r11+4]
        STORE [r8+4], r7
        LOAD r7, [r11+8]
        STORE [r8+8], r7
        LOAD r7, [r11+12]
        STORE [r8+12], r7
        LOAD r7, [r11+16]
        STORE [r8+16], r7
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom           ; #2: the state advances
        MOVI r8, save           ; roll the state back (the replay)
        LOAD r7, [r8+0]
        STORE [r11+0], r7
        LOAD r7, [r8+4]
        STORE [r11+4], r7
        LOAD r7, [r8+8]
        STORE [r11+8], r7
        LOAD r7, [r8+12]
        STORE [r11+12], r7
        LOAD r7, [r8+16]
        STORE [r11+16], r7
        MOV r1, r13
        MOVI r2, iobuf
        MOVI r3, 64
        MOVI r4, 0
        MOVI r5, 0
        CALL recvfrom           ; #3: traps with the stale state
        MOVI r1, donemsg
        CALL puts
        MOVI r0, 0
        RET
        .rodata
pmsg:   .asciz "payload"
donemsg: .asciz "replay survived\n"
        .bss
pairbuf: .space 8
iobuf:  .space 64
save:   .space 20
`

// runNetVictim builds src, spawns it on a networked kernel, applies the
// poke, and runs to completion (a kill is an outcome, not an error).
func (l *Lab) runNetVictim(name, src string, poke func(*kernel.Kernel, *kernel.Process, *binfmt.File) error) (*kernel.Process, error) {
	victim, _, err := buildAuth(src, name, installer.Options{Key: l.Key})
	if err != nil {
		return nil, fmt.Errorf("attack: build %s: %w", name, err)
	}
	k, err := l.newKernel(kernel.WithNetwork(anet.New()))
	if err != nil {
		return nil, err
	}
	p, err := k.Spawn(victim, name)
	if err != nil {
		return nil, err
	}
	if poke != nil {
		if err := poke(k, p, victim); err != nil {
			return nil, err
		}
	}
	if err := k.Run(p, 200_000_000); err != nil {
		return p, fmt.Errorf("attack: %s faulted: %w", name, err)
	}
	return p, nil
}

// sendtoRecordAddr locates the auth record of the victim's sendto site
// via its MOVI r6 preamble.
func sendtoRecordAddr(victim *binfmt.File) (uint32, error) {
	prog, err := cfg.Analyze(victim)
	if err != nil {
		return 0, err
	}
	text := victim.Section(binfmt.SecText)
	for _, s := range prog.SyscallSites() {
		if s.NumKnown && s.Num == sys.SysSendto {
			pre, err := isa.Decode(text.Data[s.Addr-isa.InstrSize-text.Addr:])
			if err != nil {
				return 0, err
			}
			return pre.Imm, nil
		}
	}
	return 0, fmt.Errorf("attack: victim has no sendto site")
}

// NetForgedSend plants a donor program's authenticated write record over
// the victim's sendto record: a compromised process trying to launder
// network traffic through a record MACed for a different call.
func (l *Lab) NetForgedSend() (Outcome, error) {
	rec, _, err := donorRecord(l.Key)
	if err != nil {
		return Outcome{}, err
	}
	poke := func(k *kernel.Kernel, p *kernel.Process, victim *binfmt.File) error {
		recAddr, err := sendtoRecordAddr(victim)
		if err != nil {
			return err
		}
		return p.Mem.KernelWrite(recAddr, rec)
	}
	p, err := l.runNetVictim("netvictim", netVictimSource, poke)
	if err != nil {
		return Outcome{}, err
	}
	return outcome("net: forged send record", "send network traffic under a donor's write record", p, "net victim done"), nil
}

// NetPortTamper rewrites the immediate of the installed MOVI that loads
// the victim's constant destination sockaddr, redirecting its traffic
// from port 7 to port 1.
func (l *Lab) NetPortTamper() (Outcome, error) {
	const (
		goodAddr = 0x02000000 | uint32(7)
		evilAddr = 0x02000000 | uint32(1)
	)
	poke := func(k *kernel.Kernel, p *kernel.Process, victim *binfmt.File) error {
		text := victim.Section(binfmt.SecText)
		for off := uint32(0); off+isa.InstrSize <= uint32(len(text.Data)); off += isa.InstrSize {
			in, err := isa.Decode(text.Data[off:])
			if err != nil {
				continue
			}
			if in.Op != isa.OpMOVI || in.Rd != isa.R5 || in.Imm != goodAddr {
				continue
			}
			in.Imm = evilAddr
			if err := p.Mem.KernelWrite(text.Addr+off, encode(nil, in)); err != nil {
				return err
			}
			// The CPU predecodes text at spawn; flush so the patched
			// instruction actually executes.
			p.CPU.PrimeICache(text.Addr, text.Addr+uint32(len(text.Data)))
			return nil
		}
		return fmt.Errorf("attack: destination MOVI not found")
	}
	p, err := l.runNetVictim("netvictim", netVictimSource, poke)
	if err != nil {
		return Outcome{}, err
	}
	return outcome("net: destination tampering", "patch the constant sockaddr to redirect traffic", p, "net victim done"), nil
}

// NetRouteTamper rewrites one entry of a miniature LB client's replica
// route table: the MOVI immediate that steers slot 4's request to
// replica 1 (port 8001) is patched to replica 0's sockaddr, silently
// re-homing the key. The sharded fleet's defense is that the route is a
// policy-constrained immediate under the call MAC, so the misrouted
// send must die as a call-MAC mismatch, not reach the wrong replica.
func (l *Lab) NetRouteTamper() (Outcome, error) {
	goodAddr := 0x02000000 | uint32(8001)
	evilAddr := 0x02000000 | uint32(8000)
	poke := func(k *kernel.Kernel, p *kernel.Process, victim *binfmt.File) error {
		text := victim.Section(binfmt.SecText)
		for off := uint32(0); off+isa.InstrSize <= uint32(len(text.Data)); off += isa.InstrSize {
			in, err := isa.Decode(text.Data[off:])
			if err != nil {
				continue
			}
			if in.Op != isa.OpMOVI || in.Rd != isa.R5 || in.Imm != goodAddr {
				continue
			}
			in.Imm = evilAddr
			if err := p.Mem.KernelWrite(text.Addr+off, encode(nil, in)); err != nil {
				return err
			}
			p.CPU.PrimeICache(text.Addr, text.Addr+uint32(len(text.Data)))
			return nil
		}
		return fmt.Errorf("attack: route-table MOVI not found")
	}
	p, err := l.runNetVictim("netroutes", netRouteSource, poke)
	if err != nil {
		return Outcome{}, err
	}
	return outcome("net: route-table tampering", "patch an LB route immediate to re-home a key slot", p, "routes done"), nil
}

// NetReplayCF runs the guest-side policy-state replay across a socket
// receive; no kernel-side poke is needed — the attack is ordinary guest
// code abusing its own writable memory.
func (l *Lab) NetReplayCF() (Outcome, error) {
	p, err := l.runNetVictim("netreplay", netReplaySource, nil)
	if err != nil {
		return Outcome{}, err
	}
	return outcome("net: CF-state replay", "roll back the recvfrom site's {lastBlock, MAC} state", p, "replay survived"), nil
}
