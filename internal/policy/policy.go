// Package policy defines the system call policy model shared by the
// trusted installer (which generates and encodes policies) and the kernel
// (which reconstructs and verifies them).
//
// The three wire-level artifacts follow Section 3 of the paper:
//
//   - The authenticated string (AS): {length, MAC, bytes}, with pointers
//     aimed at the bytes so the 20 bytes preceding the pointer hold the
//     length and MAC.
//
//   - The auth record: the block of policy arguments added to each call —
//     policy descriptor, block ID, predecessor-set pointer, policy-state
//     pointer, and the call MAC. The rewritten call passes its address in
//     register R6.
//
//   - The encoded policy / encoded call: the byte string over which the
//     call MAC is computed. The installer builds it from the policy; the
//     kernel rebuilds it from the actual runtime behaviour of the call.
//     They match iff the call complies with its policy.
package policy

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"asc/internal/mac"
	"asc/internal/sys"
)

// Descriptor is the 32-bit policy descriptor: it encodes which properties
// of the system call are constrained by the policy.
type Descriptor uint32

// Descriptor bit assignments.
const (
	// DescCallSite: the call site address is constrained (always set by
	// the installer).
	DescCallSite Descriptor = 1 << 0
	// Bits 1..5: argument i's value is constrained.
	descArgBase = 1
	// Bits 6..10: argument i is an authenticated string.
	descStrBase = 6
	// DescControlFlow: the predecessor set is constrained.
	DescControlFlow Descriptor = 1 << 11
	// Bits 12..16: argument i must match an authenticated pattern (§5.1
	// extension).
	descPatBase = 12
	// Bits 17..21: argument i is a tracked file-descriptor capability
	// (§5.3 extension).
	descFDBase = 17
)

// NumDescriptorBits is the count of meaningful descriptor bits: the call
// site bit, five value bits, five string bits, the control-flow bit,
// five pattern bits, and five fd-capability bits. Higher bits are
// reserved-zero; fault campaigns flipping descriptor state draw from
// this range so every flip lands on policy-bearing state.
const NumDescriptorBits = 22

// WithArg returns d with argument i (0-based) marked value-constrained.
func (d Descriptor) WithArg(i int) Descriptor { return d | 1<<(descArgBase+i) }

// WithString returns d with argument i marked as an authenticated string
// (implies value-constrained).
func (d Descriptor) WithString(i int) Descriptor {
	return d.WithArg(i) | 1<<(descStrBase+i)
}

// WithPattern returns d with argument i marked pattern-constrained.
func (d Descriptor) WithPattern(i int) Descriptor { return d | 1<<(descPatBase+i) }

// WithFD returns d with argument i marked as a tracked fd capability.
func (d Descriptor) WithFD(i int) Descriptor { return d | 1<<(descFDBase+i) }

// ArgConstrained reports whether argument i's value is constrained.
func (d Descriptor) ArgConstrained(i int) bool { return d&(1<<(descArgBase+i)) != 0 }

// ArgString reports whether argument i is an authenticated string.
func (d Descriptor) ArgString(i int) bool { return d&(1<<(descStrBase+i)) != 0 }

// ArgPattern reports whether argument i is pattern-constrained.
func (d Descriptor) ArgPattern(i int) bool { return d&(1<<(descPatBase+i)) != 0 }

// ArgFD reports whether argument i is a tracked fd capability.
func (d Descriptor) ArgFD(i int) bool { return d&(1<<(descFDBase+i)) != 0 }

// CallSite reports whether the call site is constrained.
func (d Descriptor) CallSite() bool { return d&DescCallSite != 0 }

// ControlFlow reports whether the predecessor set is constrained.
func (d Descriptor) ControlFlow() bool { return d&DescControlFlow != 0 }

// --- authenticated strings ---

// ASHeaderSize is the number of bytes preceding the string pointer:
// 4 bytes of length plus a 16-byte MAC.
const ASHeaderSize = 4 + mac.Size

// MaxASLen bounds authenticated string lengths, protecting the kernel
// checker from attacker-supplied giant lengths (the DoS the paper warns
// about when authenticating string contents).
const MaxASLen = 1 << 20

// EncodeAS renders the authenticated-string representation of contents:
// {length, MAC, bytes}. The pointer stored in the binary must aim at
// offset ASHeaderSize of the returned slice.
func EncodeAS(k *mac.Keyed, contents []byte) []byte {
	out := make([]byte, ASHeaderSize+len(contents))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(contents)))
	tag, _ := k.Sum(contents)
	copy(out[4:4+mac.Size], tag[:])
	copy(out[ASHeaderSize:], contents)
	return out
}

// ASView is a parsed view of an authenticated string in memory.
type ASView struct {
	Addr uint32 // address of the string bytes (as passed in arguments)
	Len  uint32
	MAC  mac.Tag
}

// EncodePredSet renders the predecessor block-ID set as the byte contents
// of an authenticated string: little-endian uint32 IDs in ascending order.
func EncodePredSet(ids []uint32) []byte {
	sorted := append([]uint32(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]byte, 4*len(sorted))
	for i, id := range sorted {
		binary.LittleEndian.PutUint32(out[4*i:], id)
	}
	return out
}

// DecodePredSet parses predecessor-set bytes.
func DecodePredSet(b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("policy: predecessor set length %d not a multiple of 4", len(b))
	}
	return AppendPredSet(make([]uint32, 0, len(b)/4), b)
}

// AppendPredSet decodes predecessor-set bytes, appending the IDs to dst.
// The kernel trap handler passes a reusable scratch slice so the decode
// does not allocate per call.
func AppendPredSet(dst []uint32, b []byte) ([]uint32, error) {
	if len(b)%4 != 0 {
		return dst, fmt.Errorf("policy: predecessor set length %d not a multiple of 4", len(b))
	}
	for i := 0; i < len(b); i += 4 {
		dst = append(dst, binary.LittleEndian.Uint32(b[i:]))
	}
	return dst, nil
}

// PredSetContains reports whether the sorted ID set contains id.
func PredSetContains(ids []uint32, id uint32) bool {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ids) && ids[lo] == id
}

// --- auth record ---

// AuthRecord is the per-call-site record stored in the .auth section; the
// rewritten call passes its address in R6.
//
// When the descriptor carries pattern bits (§5.1), the fixed record is
// followed by one pattern-AS pointer per pattern-constrained argument, in
// ascending argument order. The pointers are covered by the call MAC (as
// part of the encoded call), so patterns cannot be substituted.
type AuthRecord struct {
	Desc       Descriptor
	BlockID    uint32
	PredSetPtr uint32 // address of predecessor-set AS bytes (0 if no CF policy)
	LbPtr      uint32 // address of the {lastBlock, lbMAC} policy state
	CallMAC    mac.Tag
	// PatternPtrs holds the pattern AS bytes addresses for each argument
	// whose Desc pattern bit is set, ascending by argument index.
	PatternPtrs []uint32
}

// AuthRecordSize is the encoded size of the fixed part of an AuthRecord.
const AuthRecordSize = 16 + mac.Size

// NumPatterns returns the number of pattern-constrained arguments.
func (d Descriptor) NumPatterns() int {
	n := 0
	for i := 0; i < 5; i++ {
		if d.ArgPattern(i) {
			n++
		}
	}
	return n
}

// EncodedSize returns the full encoded size including the pattern
// extension.
func (r *AuthRecord) EncodedSize() int {
	return AuthRecordSize + 4*r.Desc.NumPatterns()
}

// Encode serializes the record (fixed part plus pattern extension).
func (r *AuthRecord) Encode() []byte {
	out := make([]byte, r.EncodedSize())
	binary.LittleEndian.PutUint32(out[0:], uint32(r.Desc))
	binary.LittleEndian.PutUint32(out[4:], r.BlockID)
	binary.LittleEndian.PutUint32(out[8:], r.PredSetPtr)
	binary.LittleEndian.PutUint32(out[12:], r.LbPtr)
	copy(out[16:], r.CallMAC[:])
	for i, p := range r.PatternPtrs {
		binary.LittleEndian.PutUint32(out[AuthRecordSize+4*i:], p)
	}
	return out
}

// DecodeAuthRecord parses an auth record, including the pattern extension
// implied by the descriptor bits.
func DecodeAuthRecord(b []byte) (AuthRecord, error) {
	if len(b) < AuthRecordSize {
		return AuthRecord{}, fmt.Errorf("policy: auth record needs %d bytes, have %d", AuthRecordSize, len(b))
	}
	var r AuthRecord
	r.Desc = Descriptor(binary.LittleEndian.Uint32(b[0:]))
	r.BlockID = binary.LittleEndian.Uint32(b[4:])
	r.PredSetPtr = binary.LittleEndian.Uint32(b[8:])
	r.LbPtr = binary.LittleEndian.Uint32(b[12:])
	copy(r.CallMAC[:], b[16:])
	if n := r.Desc.NumPatterns(); n > 0 {
		if len(b) < AuthRecordSize+4*n {
			return AuthRecord{}, fmt.Errorf("policy: auth record pattern extension truncated")
		}
		r.PatternPtrs = make([]uint32, n)
		for i := range r.PatternPtrs {
			r.PatternPtrs[i] = binary.LittleEndian.Uint32(b[AuthRecordSize+4*i:])
		}
	}
	return r, nil
}

// --- policy state (online memory checker) ---

// PolicyStateSize is the size of the in-application policy state:
// {lastBlock uint32, lbMAC [16]byte}.
const PolicyStateSize = 4 + mac.Size

// StateMAC computes the memory-checker MAC over the policy state value
// and the in-kernel counter nonce.
func StateMAC(k *mac.Keyed, lastBlock uint32, counter uint64) (mac.Tag, int) {
	var msg [12]byte
	AppendStateMsg(msg[:0], lastBlock, counter)
	return k.Sum(msg[:])
}

// StateMsgSize is the length of one memory-checker state message:
// lastBlock (4) followed by the per-process counter (8).
const StateMsgSize = 12

// AppendStateMsg appends the canonical state message — the exact bytes
// StateMAC authenticates — to dst.
func AppendStateMsg(dst []byte, lastBlock uint32, counter uint64) []byte {
	var msg [StateMsgSize]byte
	binary.LittleEndian.PutUint32(msg[0:], lastBlock)
	binary.LittleEndian.PutUint64(msg[4:], counter)
	return append(dst, msg[:]...)
}

// StateUpdate is one queued control-flow state transition: after the
// call at block Block commits, the policy state is {Block, MAC(Block,
// Ctr)}. The kernel's group-commit queue accumulates these and flushes
// them with one batched CMAC pass.
type StateUpdate struct {
	Block uint32
	Ctr   uint64
}

// EncodeStateBatch appends the canonical encoding of a group-commit
// batch to dst: a 4-byte little-endian count followed by each update's
// state message. The layout is stable — it feeds both the batched MAC
// pass (each StateMsgSize sub-slice is one message) and the fuzz target
// guarding the decoder.
func EncodeStateBatch(dst []byte, ups []StateUpdate) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(ups)))
	dst = append(dst, n[:]...)
	for _, u := range ups {
		dst = AppendStateMsg(dst, u.Block, u.Ctr)
	}
	return dst
}

// DecodeStateBatch parses an EncodeStateBatch buffer, appending the
// updates to dst. It rejects truncated, oversized, and trailing-garbage
// encodings.
func DecodeStateBatch(dst []StateUpdate, b []byte) ([]StateUpdate, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("policy: state batch header truncated (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	b = b[4:]
	if uint64(len(b)) != uint64(n)*StateMsgSize {
		return nil, fmt.Errorf("policy: state batch of %d updates wants %d payload bytes, have %d",
			n, uint64(n)*StateMsgSize, len(b))
	}
	for i := uint32(0); i < n; i++ {
		dst = append(dst, StateUpdate{
			Block: binary.LittleEndian.Uint32(b[0:]),
			Ctr:   binary.LittleEndian.Uint64(b[4:]),
		})
		b = b[StateMsgSize:]
	}
	return dst, nil
}

// --- encoded policy / encoded call ---

// EncodedArg is one constrained argument in the call encoding.
type EncodedArg struct {
	Index     int    // argument index 0..4
	IsString  bool   // authenticated string: encode {addr, len, mac}
	IsPattern bool   // pattern constraint: encode the pattern AS {addr, len, mac}
	Value     uint32 // numeric value, or AS bytes address for strings/patterns
	Len       uint32 // AS length (strings and patterns only)
	MAC       mac.Tag
}

// CallEncoding is the canonical byte-string structure over which the call
// MAC is computed. The installer fills it from the generated policy; the
// kernel fills it from the actual trap state. Any divergence in any field
// changes the bytes and therefore the MAC.
type CallEncoding struct {
	Num     uint16
	Site    uint32
	Desc    Descriptor
	BlockID uint32
	Args    []EncodedArg // ascending Index order; only constrained args
	PredSet *ASView      // nil when control flow is unconstrained
	LbPtr   uint32
}

// Bytes renders the canonical encoding.
func (e *CallEncoding) Bytes() []byte { return e.AppendBytes(nil) }

// AppendBytes appends the canonical encoding to dst and returns the
// extended slice. The kernel trap handler passes a reusable scratch
// buffer so the per-call encoding does not allocate.
func (e *CallEncoding) AppendBytes(dst []byte) []byte {
	b := dst
	b = le16(b, e.Num)
	b = le32(b, e.Site)
	b = le32(b, uint32(e.Desc))
	b = le32(b, e.BlockID)
	for _, a := range e.Args {
		if a.IsString || a.IsPattern {
			b = le32(b, a.Value)
			b = le32(b, a.Len)
			b = append(b, a.MAC[:]...)
		} else {
			b = le32(b, a.Value)
		}
	}
	if e.PredSet != nil {
		b = le32(b, e.PredSet.Addr)
		b = le32(b, e.PredSet.Len)
		b = append(b, e.PredSet.MAC[:]...)
	}
	b = le32(b, e.LbPtr)
	return b
}

// Sum computes the call MAC over the encoding.
func (e *CallEncoding) Sum(k *mac.Keyed) (mac.Tag, int) {
	return k.Sum(e.Bytes())
}

func le16(b []byte, v uint16) []byte { return append(b, byte(v), byte(v>>8)) }
func le32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// --- installer-side logical policy ---

// ArgClassification is the Table 3 classification of one argument.
type ArgClassification uint8

// Argument classifications.
const (
	ClassUnknown   ArgClassification = iota + 1 // not statically determined
	ClassImmediate                              // single known constant
	ClassString                                 // known constant string
	ClassMulti                                  // small set of known constants (mv)
	ClassOutput                                 // output-only argument (o/p)
	ClassPattern                                // must match an administrator-supplied pattern (§5.1)
)

func (c ArgClassification) String() string {
	switch c {
	case ClassUnknown:
		return "unknown"
	case ClassImmediate:
		return "immediate"
	case ClassString:
		return "string"
	case ClassMulti:
		return "multivalue"
	case ClassOutput:
		return "output"
	case ClassPattern:
		return "pattern"
	default:
		return fmt.Sprintf("ArgClassification(%d)", uint8(c))
	}
}

// ArgPolicy is the logical policy of one argument.
type ArgPolicy struct {
	Class   ArgClassification
	Values  []uint32 // known constant(s)
	Str     string   // string contents for ClassString
	Pattern string   // pattern source for ClassPattern
	IsFD    bool     // signature says this argument is a file descriptor
	Tracked bool     // fd must be a live capability from open/socket/dup (§5.3)
}

// SitePolicy is the logical policy of one system call site, before wire
// encoding.
type SitePolicy struct {
	Num      uint16
	Name     string
	Site     uint32 // address of the call instruction
	BlockID  uint32
	FuncName string
	Args     []ArgPolicy // one per declared argument
	Preds    []uint32    // predecessor block IDs (0 = entry)
}

// Descriptor derives the wire descriptor from the logical policy.
func (sp *SitePolicy) Descriptor() Descriptor {
	d := DescCallSite | DescControlFlow
	for i, a := range sp.Args {
		switch a.Class {
		case ClassString:
			d = d.WithString(i)
		case ClassImmediate:
			d = d.WithArg(i)
		case ClassPattern:
			d = d.WithPattern(i)
		}
		if a.Tracked {
			d = d.WithFD(i)
		}
	}
	return d
}

// String renders the policy in the style of the paper's examples.
func (sp *SitePolicy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Permit %s from location 0x%x in basic block %d\n", sp.Name, sp.Site, sp.BlockID)
	for i, a := range sp.Args {
		switch a.Class {
		case ClassString:
			fmt.Fprintf(&b, "  Parameter %d equals %q\n", i, a.Str)
		case ClassImmediate:
			fmt.Fprintf(&b, "  Parameter %d equals %d\n", i, a.Values[0])
		case ClassMulti:
			fmt.Fprintf(&b, "  Parameter %d in %v\n", i, a.Values)
		case ClassOutput:
			fmt.Fprintf(&b, "  Parameter %d is output-only\n", i)
		case ClassPattern:
			fmt.Fprintf(&b, "  Parameter %d matches pattern %q\n", i, a.Pattern)
		default:
			fmt.Fprintf(&b, "  Parameter %d equals ANY\n", i)
		}
	}
	fmt.Fprintf(&b, "  Possible predecessors %v\n", sp.Preds)
	return b.String()
}

// ProgramPolicy is the overall policy of one program: the collection of
// its system call policies plus analysis warnings.
type ProgramPolicy struct {
	Program  string
	OS       string
	Sites    []*SitePolicy
	Warnings []string // e.g. undecodable regions (PLTO-style reports)
}

// DistinctSyscalls returns the sorted distinct system call numbers
// permitted by the policy.
func (pp *ProgramPolicy) DistinctSyscalls() []uint16 {
	seen := make(map[uint16]bool)
	var out []uint16
	for _, s := range pp.Sites {
		if !seen[s.Num] {
			seen[s.Num] = true
			out = append(out, s.Num)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctNames returns the sorted distinct system call names.
func (pp *ProgramPolicy) DistinctNames() []string {
	nums := pp.DistinctSyscalls()
	out := make([]string, 0, len(nums))
	for _, n := range nums {
		out = append(out, sys.Name(n))
	}
	sort.Strings(out)
	return out
}
