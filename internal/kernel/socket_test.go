package kernel

import (
	"encoding/binary"
	"testing"

	anet "asc/internal/net"
	"asc/internal/sys"
)

// netKernel builds a permissive kernel with a fresh loopback network.
func netKernel(t *testing.T) *Kernel {
	t.Helper()
	return newKernel(t, WithMode(Permissive), WithNetwork(anet.New()))
}

// TestSockCheckFamily covers the multi-syscall validation arm: every
// fd-only socket call distinguishes EBADF (no such descriptor) from
// ENOTSOCK (descriptor of another kind) and accepts a real socket.
func TestSockCheckFamily(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	fd := call(k, p, sys.SysSocket, 2, 1, 0)
	if int32(fd) < 0 {
		t.Fatalf("socket = %d", int32(fd))
	}
	family := []struct {
		name string
		num  uint16
	}{
		{"bind", sys.SysBind},
		{"connect", sys.SysConnect},
		{"listen", sys.SysListen},
		{"shutdown", sys.SysShutdown},
		{"getsockname", sys.SysGetsockname},
		{"getpeername", sys.SysGetpeername},
		{"setsockopt", sys.SysSetsockopt},
		{"getsockopt", sys.SysGetsockopt},
	}
	for _, c := range family {
		if r := call(k, p, c.num, fd, 0, 0); r != 0 {
			t.Errorf("%s on socket = %d, want 0", c.name, int32(r))
		}
		if r := call(k, p, c.num, 0, 0, 0); int32(r) != -sys.ENOTSOCK {
			t.Errorf("%s on console = %d, want -ENOTSOCK", c.name, int32(r))
		}
		if r := call(k, p, c.num, 99, 0, 0); int32(r) != -sys.EBADF {
			t.Errorf("%s on bad fd = %d, want -EBADF", c.name, int32(r))
		}
	}
}

// TestRecvfromValidation is the regression test for the old stub that
// returned 0 for ANY descriptor: recvfrom must validate the fd first.
func TestRecvfromValidation(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	buf := scratch(p)
	if r := call(k, p, sys.SysRecvfrom, 99, buf, 16, 0, 0); int32(r) != -sys.EBADF {
		t.Errorf("recvfrom bad fd = %d, want -EBADF", int32(r))
	}
	if r := call(k, p, sys.SysRecvfrom, 1, buf, 16, 0, 0); int32(r) != -sys.ENOTSOCK {
		t.Errorf("recvfrom on console = %d, want -ENOTSOCK", int32(r))
	}
	fd := call(k, p, sys.SysSocket, 2, 1, 0)
	// Legacy stub (no network): a valid socket reads as end-of-stream.
	if r := call(k, p, sys.SysRecvfrom, fd, buf, 16, 0, 0); r != 0 {
		t.Errorf("legacy recvfrom on socket = %d, want 0", int32(r))
	}
}

// TestSocketpairLegacy covers the stub socketpair: two fresh
// descriptors, and EFAULT on an unwritable result slot.
func TestSocketpairLegacy(t *testing.T) {
	k := newKernel(t, WithMode(Permissive))
	p := newProc(t, k)
	out := scratch(p)
	if r := call(k, p, sys.SysSocketpair, 1, 1, 0, out); r != 0 {
		t.Fatalf("socketpair = %d", int32(r))
	}
	b, _ := p.Mem.KernelRead(out, 8)
	a, c := binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint32(b[4:])
	if a == c || int32(a) < 3 || int32(c) < 3 {
		t.Errorf("socketpair fds = %d,%d", a, c)
	}
	// Both descriptors are sockets as far as the family check goes.
	if r := call(k, p, sys.SysListen, a, 1); r != 0 {
		t.Errorf("listen on pair fd = %d", int32(r))
	}
	if r := call(k, p, sys.SysSocketpair, 1, 1, 0, 0xffff_0000); int32(r) != -sys.EFAULT {
		t.Errorf("socketpair bad buf = %d, want -EFAULT", int32(r))
	}
}

// TestSocketpairNetwork checks real data flow through a socketpair:
// bytes sent on one end arrive framed on the other, and closing an end
// gives the peer end-of-stream then EPIPE.
func TestSocketpairNetwork(t *testing.T) {
	k := netKernel(t)
	p := newProc(t, k)
	out := scratch(p)
	if r := call(k, p, sys.SysSocketpair, 1, 1, 0, out); r != 0 {
		t.Fatalf("socketpair = %d", int32(r))
	}
	b, _ := p.Mem.KernelRead(out, 8)
	a, c := binary.LittleEndian.Uint32(b), binary.LittleEndian.Uint32(b[4:])

	buf := scratch(p) + 64
	putStr(t, p, buf, "hello")
	if n := call(k, p, sys.SysSendto, a, buf, 5, 0, 0); n != 5 {
		t.Fatalf("sendto = %d", int32(n))
	}
	recv := scratch(p) + 256
	if n := call(k, p, sys.SysRecvfrom, c, recv, 16, 0, 0); n != 5 {
		t.Fatalf("recvfrom = %d", int32(n))
	}
	got, _ := p.Mem.KernelRead(recv, 5)
	if string(got) != "hello" {
		t.Errorf("payload = %q", got)
	}
	// Empty inbox without a gate: EAGAIN, not a hang.
	if r := call(k, p, sys.SysRecvfrom, c, recv, 16, 0, 0); int32(r) != -sys.EAGAIN {
		t.Errorf("empty recvfrom = %d, want -EAGAIN", int32(r))
	}
	// Unconnected socket: ENOTCONN.
	lone := call(k, p, sys.SysSocket, 2, 1, 0)
	if r := call(k, p, sys.SysSendto, lone, buf, 5, 0, 0); int32(r) != -sys.ENOTCONN {
		t.Errorf("sendto unconnected = %d, want -ENOTCONN", int32(r))
	}
	// Close one end: the peer drains EOF, then send fails with EPIPE.
	if r := call(k, p, sys.SysClose, a); r != 0 {
		t.Fatalf("close = %d", int32(r))
	}
	if r := call(k, p, sys.SysRecvfrom, c, recv, 16, 0, 0); r != 0 {
		t.Errorf("recvfrom after close = %d, want 0 (EOF)", int32(r))
	}
	if r := call(k, p, sys.SysSendto, c, buf, 5, 0, 0); int32(r) != -sys.EPIPE {
		t.Errorf("sendto to closed peer = %d, want -EPIPE", int32(r))
	}
}

// TestListenConnectAccept drives the full stream lifecycle inside one
// process: bind/listen on a port, connect to it, accept the peer, and
// exchange data both ways, checking the by-value address results.
func TestListenConnectAccept(t *testing.T) {
	k := netKernel(t)
	p := newProc(t, k)

	srv := call(k, p, sys.SysSocket, 2, 1, 0)
	if r := call(k, p, sys.SysBind, srv, anet.EncodeAddr(80)); r != 0 {
		t.Fatalf("bind = %d", int32(r))
	}
	if r := call(k, p, sys.SysListen, srv, 4); r != 0 {
		t.Fatalf("listen = %d", int32(r))
	}
	// Rebinding the same port from another socket fails at listen time.
	dup := call(k, p, sys.SysSocket, 2, 1, 0)
	if r := call(k, p, sys.SysBind, dup, anet.EncodeAddr(80)); r != 0 {
		t.Fatalf("bind dup = %d", int32(r))
	}
	if r := call(k, p, sys.SysListen, dup, 4); int32(r) != -sys.EADDRINUSE {
		t.Errorf("listen dup = %d, want -EADDRINUSE", int32(r))
	}

	cli := call(k, p, sys.SysSocket, 2, 1, 0)
	if r := call(k, p, sys.SysConnect, cli, anet.EncodeAddr(81)); int32(r) != -sys.ECONNREFUSED {
		t.Errorf("connect unbound port = %d, want -ECONNREFUSED", int32(r))
	}
	if r := call(k, p, sys.SysConnect, cli, 0xdeadbeef); int32(r) != -sys.EINVAL {
		t.Errorf("connect malformed addr = %d, want -EINVAL", int32(r))
	}
	if r := call(k, p, sys.SysConnect, cli, anet.EncodeAddr(80)); r != 0 {
		t.Fatalf("connect = %d", int32(r))
	}
	if r := call(k, p, sys.SysConnect, cli, anet.EncodeAddr(80)); int32(r) != -sys.EISCONN {
		t.Errorf("reconnect = %d, want -EISCONN", int32(r))
	}

	addrOut := scratch(p)
	conn := call(k, p, sys.SysAccept, srv, addrOut)
	if int32(conn) < 0 {
		t.Fatalf("accept = %d", int32(conn))
	}
	b, _ := p.Mem.KernelRead(addrOut, 4)
	peer, ok := anet.DecodeAddr(binary.LittleEndian.Uint32(b))
	if !ok || peer.Port < 49152 {
		t.Errorf("accept peer addr = %#x", binary.LittleEndian.Uint32(b))
	}
	// Accepting again with nothing pending: EAGAIN (no gate).
	if r := call(k, p, sys.SysAccept, srv, 0); int32(r) != -sys.EAGAIN {
		t.Errorf("accept empty = %d, want -EAGAIN", int32(r))
	}

	// getsockname/getpeername report the packed port both ways.
	if r := call(k, p, sys.SysGetsockname, conn, addrOut); r != 0 {
		t.Fatalf("getsockname = %d", int32(r))
	}
	b, _ = p.Mem.KernelRead(addrOut, 4)
	if a, _ := anet.DecodeAddr(binary.LittleEndian.Uint32(b)); a.Port != 80 {
		t.Errorf("server conn local port = %d, want 80", a.Port)
	}
	if r := call(k, p, sys.SysGetpeername, cli, addrOut); r != 0 {
		t.Fatalf("getpeername = %d", int32(r))
	}
	b, _ = p.Mem.KernelRead(addrOut, 4)
	if a, _ := anet.DecodeAddr(binary.LittleEndian.Uint32(b)); a.Port != 80 {
		t.Errorf("client peer port = %d, want 80", a.Port)
	}

	// Request/response across the pair, via sendto and plain write.
	buf := scratch(p) + 64
	putStr(t, p, buf, "ping")
	if n := call(k, p, sys.SysSendto, cli, buf, 4, 0, 0); n != 4 {
		t.Fatalf("client send = %d", int32(n))
	}
	recv := scratch(p) + 256
	srcOut := scratch(p) + 512
	if n := call(k, p, sys.SysRecvfrom, conn, recv, 16, 0, srcOut); n != 4 {
		t.Fatalf("server recv = %d", int32(n))
	}
	if got, _ := p.Mem.KernelRead(recv, 4); string(got) != "ping" {
		t.Errorf("server payload = %q", got)
	}
	putStr(t, p, buf, "pong")
	if n := call(k, p, sys.SysWrite, conn, buf, 4); n != 4 {
		t.Fatalf("server write = %d", int32(n))
	}
	if n := call(k, p, sys.SysRead, cli, recv, 16); n != 4 {
		t.Fatalf("client read = %d", int32(n))
	}
	if got, _ := p.Mem.KernelRead(recv, 4); string(got) != "pong" {
		t.Errorf("client payload = %q", got)
	}

	// Shutdown tears the stream down for the peer.
	if r := call(k, p, sys.SysShutdown, conn, 2); r != 0 {
		t.Fatalf("shutdown = %d", int32(r))
	}
	if r := call(k, p, sys.SysRead, cli, recv, 16); r != 0 {
		t.Errorf("read after peer shutdown = %d, want 0 (EOF)", int32(r))
	}
}

// TestReleaseNet checks the death-cleanup hook: endpoints of a finished
// process are closed so peers observe end-of-stream.
func TestReleaseNet(t *testing.T) {
	k := netKernel(t)
	p := newProc(t, k)
	lis, err := k.Net.Listen(90, 2)
	if err != nil {
		t.Fatal(err)
	}
	fd := call(k, p, sys.SysSocket, 2, 1, 0)
	if r := call(k, p, sys.SysConnect, fd, anet.EncodeAddr(90)); r != 0 {
		t.Fatalf("connect = %d", int32(r))
	}
	srv, err := lis.Accept(nil)
	if err != nil {
		t.Fatal(err)
	}
	k.ReleaseNet(p)
	if msg, err := srv.Recv(nil); err != nil || msg != nil {
		t.Errorf("peer Recv after ReleaseNet = %q, %v, want EOF", msg, err)
	}
}
