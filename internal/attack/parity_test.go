package attack

import (
	"testing"

	"asc/internal/fault"
	"asc/internal/kernel"
)

// freshInjector returns a kernel option that installs a NEW engine of
// the given class into each kernel the lab builds, so every experiment
// sees the same deterministic fault regardless of battery order.
func freshInjector(class fault.Class, seed uint64) kernel.Option {
	return func(k *kernel.Kernel) {
		kernel.WithInjector(fault.NewEngine(class, seed))(k)
	}
}

// cacheArms are the kernel configurations the battery must agree
// across: no cache, the per-process cache, the fleet-shared cache with
// group-commit batching, and paged memory with the authenticated swap
// device. Sharing, batching, and paging change cost and memory layout,
// never detection.
var cacheArms = map[string][]kernel.Option{
	"uncached": nil,
	"cached":   {kernel.WithCacheMode(kernel.CachePerProcess)},
	"fleet":    {kernel.WithVerifyCache(), kernel.WithBatchVerify(8)},
	"paged":    {kernel.WithPagedMemory(4)},
}

// TestBatteryFaultParity runs the full attack battery inside a fault
// campaign, across every cache arm: every experiment must produce the
// identical outcome (blocked/allowed AND reason) in all configurations.
// This is the cache-soundness claim of PR 1 extended to a platform
// under active fault injection, and now to batched group commit.
func TestBatteryFaultParity(t *testing.T) {
	key := []byte("0123456789abcdef")
	run := func(class fault.Class, seed uint64, arm string) []Outcome {
		t.Helper()
		lab, err := NewLab(key)
		if err != nil {
			t.Fatal(err)
		}
		if class != "" {
			lab.KernelOpts = append(lab.KernelOpts, freshInjector(class, seed))
		}
		lab.KernelOpts = append(lab.KernelOpts, cacheArms[arm]...)
		outs, err := lab.Battery()
		if err != nil {
			t.Fatalf("%s battery: %v", class, err)
		}
		return outs
	}

	// Control arm: the unperturbed battery fixes which experiments are
	// expected to be blocked (the baseline run and the
	// no-countermeasure Frankenstein arm legitimately succeed).
	control := run("", 0, "uncached")

	classes := append(fault.Classes(), fault.Class("")) // "" = no-injector arm
	for _, class := range classes {
		for _, seed := range []uint64{1, 99} {
			name := "no-fault"
			if class != "" {
				name = string(class)
			}
			plain := run(class, seed, "uncached")
			if len(plain) != len(control) {
				t.Fatalf("%s seed %d: battery sizes differ", name, seed)
			}
			for _, arm := range []string{"cached", "fleet", "paged"} {
				got := run(class, seed, arm)
				if len(got) != len(plain) {
					t.Fatalf("%s seed %d: %s battery size differs", name, seed, arm)
				}
				for i := range plain {
					if plain[i].Blocked != got[i].Blocked || plain[i].Reason != got[i].Reason {
						t.Errorf("%s seed %d: %s diverges under %s: uncached %+v, %s %+v",
							name, seed, plain[i].Name, arm, plain[i], arm, got[i])
					}
				}
			}
			for i := range plain {
				// An injected fault may only tighten the platform: an
				// attack blocked without faults must stay blocked.
				if control[i].Blocked && !plain[i].Blocked {
					t.Errorf("%s seed %d: fault unblocked attack %s", name, seed, plain[i].Name)
				}
			}
		}
	}
}
