package fault

import (
	"bytes"
	"testing"
)

// TestCampaignContract runs the full campaign and requires a clean
// contract: every in-boundary fault detected with an allowed reason in
// both enforcement modes, out-of-boundary faults survived, and outcomes
// identical with the verify cache on and off.
func TestCampaignContract(t *testing.T) {
	m, err := Run(Config{Seed: 42, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fails := m.Failures(); len(fails) > 0 {
		for _, f := range fails {
			t.Error(f)
		}
	}
	t.Logf("\n%s", m.Render())

	// Every class × victim pair ran, and the in-boundary classes fired
	// somewhere in the corpus.
	firedBy := map[string]int{}
	for _, c := range m.Cells {
		firedBy[c.Class] += c.Fired
	}
	for _, class := range Classes() {
		if _, ok := firedBy[string(class)]; !ok {
			t.Errorf("class %s missing from matrix", class)
		}
		if firedBy[string(class)] == 0 {
			t.Errorf("class %s never fired across the corpus", class)
		}
	}

	// Every victim's supervised-restart demo recovered from its
	// transient fault in exactly one restart.
	if len(m.Restarts) != 6 {
		t.Fatalf("restart cells = %d, want one per victim", len(m.Restarts))
	}
	for _, r := range m.Restarts {
		if !r.Recovered || r.Attempts != 2 || r.Restarts != 1 {
			t.Errorf("restart %s: %+v, want recovery in one restart", r.Victim, r)
		}
	}
}

// TestCampaignDeterminism requires byte-identical JSON for equal seeds
// and a different matrix for a different seed.
func TestCampaignDeterminism(t *testing.T) {
	run := func(seed uint64) []byte {
		t.Helper()
		m, err := Run(Config{Seed: seed, Trials: 2})
		if err != nil {
			t.Fatal(err)
		}
		j, err := m.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	a1, a2, b := run(7), run(7), run(8)
	if !bytes.Equal(a1, a2) {
		t.Error("same seed produced different JSON")
	}
	if bytes.Equal(a1, b) {
		t.Error("different seeds produced identical JSON (suspicious)")
	}
}
