// ascpolicy generates and prints system call policies.
//
// Usage:
//
//	ascpolicy [-os linux|openbsd] exe          print the ASC policy
//	ascpolicy -corpus [-os ...]                policies for the built-in corpus
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"asc"
	"asc/internal/libc"
	"asc/internal/workload"
)

var jsonOut bool

func main() {
	osName := flag.String("os", "linux", "personality: linux or openbsd")
	corpus := flag.Bool("corpus", false, "analyze the built-in policy-study corpus")
	verbose := flag.Bool("v", false, "print full per-site policies")
	asJSON := flag.Bool("json", false, "emit the policy as JSON")
	flag.Parse()

	personality := asc.Linux
	if *osName == "openbsd" {
		personality = asc.OpenBSD
	}

	if *corpus {
		for _, name := range workload.Names() {
			exe, err := workload.Build(name, libc.OS(personality))
			if err != nil {
				fatal(err)
			}
			jsonOut = *asJSON
			printPolicy(exe, name, personality, *verbose)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ascpolicy [-os linux|openbsd] [-v] (exe | -corpus)")
		os.Exit(2)
	}
	b, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	exe, err := asc.ReadBinary(b)
	if err != nil {
		fatal(err)
	}
	jsonOut = *asJSON
	printPolicy(exe, flag.Arg(0), personality, *verbose)
}

func printPolicy(exe *asc.Binary, name string, personality asc.OS, verbose bool) {
	if jsonOut {
		pp, _, err := asc.GeneratePolicy(exe, name, personality)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pp); err != nil {
			fatal(err)
		}
		return
	}
	pp, rep, err := asc.GeneratePolicy(exe, name, personality)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (%s): %d sites, %d distinct system calls\n", name, personality, rep.Sites, rep.DistinctCalls)
	fmt.Printf("  calls: %v\n", pp.DistinctNames())
	fmt.Printf("  args %d, output %d, authenticated %d, multivalue %d, fds %d\n",
		rep.TotalArgs, rep.OutputArgs, rep.AuthArgs, rep.MultiArgs, rep.FDArgs)
	for _, w := range rep.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
	if verbose {
		for _, sp := range pp.Sites {
			fmt.Print(sp.String())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascpolicy:", err)
	os.Exit(1)
}
