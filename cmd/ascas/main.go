// ascas assembles platform assembly source into a relocatable SELF
// object.
//
// Usage: ascas [-o out.o] file.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"asc/internal/asm"
)

func main() {
	out := flag.String("o", "", "output object path (default: source with .o)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ascas [-o out.o] file.s")
		os.Exit(2)
	}
	src := flag.Arg(0)
	b, err := os.ReadFile(src)
	if err != nil {
		fatal(err)
	}
	obj, err := asm.Assemble(src, string(b))
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(src, ".s") + ".o"
	}
	data, err := obj.Bytes()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("ascas: %s -> %s (%d bytes)\n", src, path, len(data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ascas:", err)
	os.Exit(1)
}
